//! The Laplace mechanism.
//!
//! For a query with sensitivity `Δ` (the most the true answer can change when
//! one record is added or removed), releasing `answer + Lap(Δ/ε)` satisfies
//! ε-differential privacy. `Lap(b)` is the zero-mean Laplace distribution
//! with scale `b`, density `exp(-|x|/b) / 2b`, and standard deviation `√2·b`.
//!
//! The engine calibrates counts and clamped sums at sensitivity 1, so a query
//! at accuracy ε draws `Lap(1/ε)` — standard deviation `√2/ε`, exactly the
//! figure in the paper's Table 1.

use crate::rng::NoiseSource;

/// Draw one sample from the Laplace distribution with the given `scale`
/// (must be positive and finite) using inverse-CDF sampling.
///
/// With `u ~ Uniform(-1/2, 1/2)`, `x = -scale · sgn(u) · ln(1 - 2|u|)` is
/// Laplace-distributed with scale `scale`.
pub fn laplace_noise(noise: &NoiseSource, scale: f64) -> f64 {
    debug_assert!(
        scale.is_finite() && scale > 0.0,
        "bad Laplace scale {scale}"
    );
    let u = noise.centered_uniform();
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Standard deviation of the Laplace noise added to a sensitivity-1 query at
/// accuracy `eps`: `√2/ε`. Exposed so analysts can reason about error bars,
/// as the paper emphasizes ("the noise distribution is known to the analyst").
pub fn laplace_std(eps: f64) -> f64 {
    std::f64::consts::SQRT_2 / eps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(scale: f64, n: usize, seed: u64) -> (f64, f64) {
        let src = NoiseSource::seeded(seed);
        let xs: Vec<f64> = (0..n).map(|_| laplace_noise(&src, scale)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn laplace_mean_is_near_zero() {
        let (mean, _) = sample_stats(1.0, 200_000, 11);
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
    }

    #[test]
    fn laplace_std_matches_theory() {
        // std of Lap(b) is sqrt(2)*b.
        for &b in &[0.5, 1.0, 4.0] {
            let (_, std) = sample_stats(b, 200_000, 13);
            let expected = std::f64::consts::SQRT_2 * b;
            assert!(
                (std - expected).abs() / expected < 0.05,
                "scale {b}: std {std} vs expected {expected}"
            );
        }
    }

    #[test]
    fn laplace_std_helper_matches_table1() {
        // Table 1: count noise std is sqrt(2)/eps.
        assert!((laplace_std(0.1) - 14.142).abs() < 0.01);
        assert!((laplace_std(1.0) - std::f64::consts::SQRT_2).abs() < 0.001);
    }

    #[test]
    fn laplace_is_symmetric() {
        let src = NoiseSource::seeded(17);
        let n = 100_000;
        let positives = (0..n).filter(|_| laplace_noise(&src, 1.0) > 0.0).count() as f64;
        let frac = positives / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn laplace_tail_decays_exponentially() {
        // P(|X| > t) = exp(-t/b); check at t = 3b: e^-3 ≈ 0.0498.
        let src = NoiseSource::seeded(19);
        let n = 200_000;
        let beyond = (0..n)
            .filter(|_| laplace_noise(&src, 2.0).abs() > 6.0)
            .count() as f64;
        let frac = beyond / n as f64;
        assert!((frac - 0.0498).abs() < 0.006, "tail fraction {frac}");
    }
}
