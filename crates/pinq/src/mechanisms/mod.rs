//! Differential-privacy noise mechanisms.
//!
//! These are the calibrated randomization primitives underneath every
//! aggregation in the engine:
//!
//! * [`laplace`] — the Laplace mechanism for real-valued queries
//!   (counts, sums, averages). Matches the paper's Table 1 calibration:
//!   a count at accuracy ε receives noise with standard deviation `√2/ε`.
//! * [`geometric`] — the two-sided geometric ("discrete Laplace") mechanism
//!   for integer-valued counts.
//! * [`exponential`] — the exponential mechanism for selecting from a
//!   candidate set under a score function; used by `NoisyMedian`.

pub mod exponential;
pub mod geometric;
pub mod laplace;

pub use exponential::{exponential_mechanism, exponential_mechanism_index};
pub use geometric::geometric_noise;
pub use laplace::{laplace_noise, laplace_std};
