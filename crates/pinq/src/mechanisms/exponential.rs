//! The exponential mechanism.
//!
//! For queries whose output is a *selection* rather than a number — "which
//! candidate is best?" — the exponential mechanism (McSherry & Talwar, 2007)
//! picks candidate `c` with probability proportional to
//! `exp(ε · q(c) / (2·Δq))`, where `q` is a score function of sensitivity
//! `Δq`. The engine uses it for `NoisyMedian`, scoring each candidate by how
//! evenly it splits the data (paper Table 1: the return value partitions the
//! input into sets whose sizes differ by roughly `√2/ε`).

use crate::error::{Error, Result};
use crate::rng::NoiseSource;

/// Select an index into `scores` with probability `∝ exp(ε·score/(2·Δ))`.
///
/// Implemented with the Gumbel-max trick for numerical stability: adding
/// independent Gumbel noise to each scaled score and taking the argmax is
/// distributionally identical to softmax sampling, and never overflows.
pub fn exponential_mechanism_index(
    noise: &NoiseSource,
    scores: &[f64],
    eps: f64,
    sensitivity: f64,
) -> Result<usize> {
    if scores.is_empty() {
        return Err(Error::EmptyCandidates);
    }
    crate::error::check_epsilon(eps)?;
    debug_assert!(sensitivity > 0.0);
    let factor = eps / (2.0 * sensitivity);
    let mut best = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        // Gumbel(0,1) sample: -ln(-ln(U)).
        let u: f64 = noise.uniform().max(f64::MIN_POSITIVE);
        let g = -(-u.ln()).ln();
        let v = factor * s + g;
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    Ok(best)
}

/// Select one of `candidates` using scores produced by `score`.
pub fn exponential_mechanism<'a, C>(
    noise: &NoiseSource,
    candidates: &'a [C],
    score: impl Fn(&C) -> f64,
    eps: f64,
    sensitivity: f64,
) -> Result<&'a C> {
    let scores: Vec<f64> = candidates.iter().map(&score).collect();
    let idx = exponential_mechanism_index(noise, &scores, eps, sensitivity)?;
    Ok(&candidates[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_candidates_is_an_error() {
        let src = NoiseSource::seeded(41);
        assert_eq!(
            exponential_mechanism_index(&src, &[], 1.0, 1.0),
            Err(Error::EmptyCandidates)
        );
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let src = NoiseSource::seeded(43);
        assert!(exponential_mechanism_index(&src, &[1.0], -1.0, 1.0).is_err());
    }

    #[test]
    fn high_epsilon_concentrates_on_best_candidate() {
        let src = NoiseSource::seeded(47);
        let scores = [0.0, 10.0, 0.0, 0.0];
        let mut hits = 0;
        for _ in 0..1000 {
            if exponential_mechanism_index(&src, &scores, 50.0, 1.0).unwrap() == 1 {
                hits += 1;
            }
        }
        assert!(hits > 990, "picked best only {hits}/1000 times");
    }

    #[test]
    fn low_epsilon_approaches_uniform() {
        let src = NoiseSource::seeded(53);
        let scores = [0.0, 10.0];
        let mut hits = [0usize; 2];
        for _ in 0..20_000 {
            hits[exponential_mechanism_index(&src, &scores, 1e-6, 1.0).unwrap()] += 1;
        }
        let frac = hits[0] as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn sampling_probabilities_follow_softmax() {
        // Two candidates with score gap d: odds should be exp(eps*d/2).
        let src = NoiseSource::seeded(59);
        let eps = 2.0;
        let scores = [0.0, 1.0];
        let n = 100_000;
        let mut second = 0usize;
        for _ in 0..n {
            if exponential_mechanism_index(&src, &scores, eps, 1.0).unwrap() == 1 {
                second += 1;
            }
        }
        let p = second as f64 / n as f64;
        let expected = (eps / 2.0_f64).exp() / (1.0 + (eps / 2.0_f64).exp());
        assert!((p - expected).abs() < 0.01, "{p} vs {expected}");
    }

    #[test]
    fn generic_wrapper_returns_reference_into_candidates() {
        let src = NoiseSource::seeded(61);
        let cands = ["a", "b", "c"];
        let pick = exponential_mechanism(
            &src,
            &cands,
            |c| if *c == "b" { 100.0 } else { 0.0 },
            10.0,
            1.0,
        )
        .unwrap();
        assert_eq!(*pick, "b");
    }
}
