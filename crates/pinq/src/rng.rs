//! Shared, seedable randomness for noise generation.
//!
//! Every noisy aggregation in the engine draws from a [`NoiseSource`], a
//! thread-safe handle over a seedable PRNG. Seeding makes experiments
//! reproducible run-to-run, which the benchmark harness relies on; the same
//! seed and the same query sequence yield the same noised outputs.
//!
//! ## Substreams
//!
//! Parallel kernels (see [`crate::exec`]) must not have workers race on one
//! shared generator — the draw order, and therefore every released value,
//! would depend on thread scheduling. Instead a coordinating thread derives
//! one child [`NoiseSource`] per task with [`NoiseSource::substream`],
//! *before* dispatching work. Each substream is seeded from the root seed
//! and a monotonically increasing epoch counter through a SplitMix64-style
//! mixer, so:
//!
//! * derivation is deterministic — a fixed seed and a fixed sequence of
//!   `substream()` calls produce the same children, regardless of how many
//!   workers later consume them;
//! * successive parallel calls never reuse a child stream — the epoch
//!   counter is shared by all clones of the source, so no two derived
//!   substreams of one root ever coincide (correlated noise across queries
//!   would be a privacy bug, not just a statistics bug);
//! * deriving a substream does not advance the parent's own draw sequence.
//!
//! Note on threat models: a *deployed* mediated-analysis service must use a
//! cryptographically secure generator whose state the analyst cannot learn.
//! `rand::rngs::StdRng` is a CSPRNG (ChaCha-based), so the default here is
//! adequate; the seed, of course, must then be kept secret rather than fixed.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// SplitMix64 finalizer: a cheap, well-mixed `u64 -> u64` permutation.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the seed of substream `index` of a root seed. Public so that
/// deterministic parallel generators outside the engine (e.g. chunked
/// synthetic-trace generation) can share the engine's derivation scheme.
pub fn derive_seed(root: u64, index: u64) -> u64 {
    // Golden-ratio increment decorrelates consecutive indices before the
    // finalizer; the xor folds the root in.
    mix64(
        root ^ index
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x2545_f491_4f6c_dd1d),
    )
}

/// A cloneable, thread-safe source of randomness shared by every queryable
/// derived from the same protected dataset.
#[derive(Clone)]
pub struct NoiseSource {
    inner: Arc<Mutex<StdRng>>,
    /// Root seed for substream derivation (not the generator state).
    root: u64,
    /// Substream epoch, shared by all clones: each derived substream
    /// consumes one epoch, so streams are never reused.
    epoch: Arc<AtomicU64>,
}

impl std::fmt::Debug for NoiseSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoiseSource").finish_non_exhaustive()
    }
}

impl NoiseSource {
    /// Create a noise source from a fixed seed. Deterministic: the sequence
    /// of draws depends only on the seed and the order of operations.
    pub fn seeded(seed: u64) -> Self {
        NoiseSource {
            inner: Arc::new(Mutex::new(StdRng::seed_from_u64(seed))),
            root: seed,
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Create a noise source seeded from operating-system entropy.
    pub fn from_entropy() -> Self {
        let root = StdRng::from_entropy().gen::<u64>();
        NoiseSource::seeded(root)
    }

    /// Draw a uniform sample in `[0, 1)`.
    pub fn uniform(&self) -> f64 {
        self.inner.lock().gen::<f64>()
    }

    /// Draw a uniform sample in the open interval `(-0.5, 0.5)`, never
    /// exactly `-0.5` (so that `ln(1 - 2|u|)` stays finite).
    pub fn centered_uniform(&self) -> f64 {
        loop {
            let u = self.inner.lock().gen::<f64>() - 0.5;
            if u > -0.5 {
                return u;
            }
        }
    }

    /// Run a closure with exclusive access to the underlying RNG. Used by
    /// mechanisms that need several draws atomically.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Derive an independent child source for one parallel task.
    ///
    /// Must be called on the coordinating thread, in task order, *before*
    /// work is dispatched — that makes the assignment of streams to tasks
    /// deterministic for any worker count. Each call consumes one epoch of
    /// the shared counter (clones included), so repeated parallel phases on
    /// the same dataset never see the same stream twice. The parent's own
    /// draw sequence is not advanced.
    pub fn substream(&self) -> NoiseSource {
        let e = self.epoch.fetch_add(1, Ordering::Relaxed);
        NoiseSource::seeded(derive_seed(self.root, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_sources_are_reproducible() {
        let a = NoiseSource::seeded(7);
        let b = NoiseSource::seeded(7);
        let xs: Vec<f64> = (0..16).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.uniform()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = NoiseSource::seeded(1);
        let b = NoiseSource::seeded(2);
        let xs: Vec<f64> = (0..8).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn centered_uniform_is_in_open_interval() {
        let s = NoiseSource::seeded(3);
        for _ in 0..10_000 {
            let u = s.centered_uniform();
            assert!(u > -0.5 && u < 0.5);
        }
    }

    #[test]
    fn clones_share_state() {
        // Clones advance the same generator: interleaved draws from a clone
        // must not repeat the original's stream.
        let a = NoiseSource::seeded(9);
        let b = a.clone();
        let x = a.uniform();
        let y = b.uniform();
        let z = a.uniform();
        assert_ne!(x, y);
        assert_ne!(y, z);
    }

    #[test]
    fn substream_derivation_is_deterministic() {
        let a = NoiseSource::seeded(11);
        let b = NoiseSource::seeded(11);
        for _ in 0..4 {
            let xs: Vec<f64> = {
                let s = a.substream();
                (0..8).map(|_| s.uniform()).collect()
            };
            let ys: Vec<f64> = {
                let s = b.substream();
                (0..8).map(|_| s.uniform()).collect()
            };
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn successive_substreams_differ() {
        let a = NoiseSource::seeded(13);
        let s1 = a.substream();
        let s2 = a.substream();
        let xs: Vec<f64> = (0..8).map(|_| s1.uniform()).collect();
        let ys: Vec<f64> = (0..8).map(|_| s2.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn clones_share_the_epoch_counter() {
        // A substream taken through a clone must not collide with the next
        // substream of the original: the epoch is shared state.
        let a = NoiseSource::seeded(15);
        let b = a.clone();
        let s1 = b.substream();
        let s2 = a.substream();
        let xs: Vec<f64> = (0..8).map(|_| s1.uniform()).collect();
        let ys: Vec<f64> = (0..8).map(|_| s2.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn substream_does_not_advance_the_parent() {
        let a = NoiseSource::seeded(17);
        let b = NoiseSource::seeded(17);
        let _ = a.substream();
        let _ = a.substream();
        assert_eq!(a.uniform(), b.uniform());
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(42, i)), "collision at index {i}");
        }
    }
}
