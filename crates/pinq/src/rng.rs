//! Shared, seedable randomness for noise generation.
//!
//! Every noisy aggregation in the engine draws from a [`NoiseSource`], a
//! thread-safe handle over a seedable PRNG. Seeding makes experiments
//! reproducible run-to-run, which the benchmark harness relies on; the same
//! seed and the same query sequence yield the same noised outputs.
//!
//! Note on threat models: a *deployed* mediated-analysis service must use a
//! cryptographically secure generator whose state the analyst cannot learn.
//! `rand::rngs::StdRng` is a CSPRNG (ChaCha-based), so the default here is
//! adequate; the seed, of course, must then be kept secret rather than fixed.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A cloneable, thread-safe source of randomness shared by every queryable
/// derived from the same protected dataset.
#[derive(Clone)]
pub struct NoiseSource {
    inner: Arc<Mutex<StdRng>>,
}

impl std::fmt::Debug for NoiseSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoiseSource").finish_non_exhaustive()
    }
}

impl NoiseSource {
    /// Create a noise source from a fixed seed. Deterministic: the sequence
    /// of draws depends only on the seed and the order of operations.
    pub fn seeded(seed: u64) -> Self {
        NoiseSource {
            inner: Arc::new(Mutex::new(StdRng::seed_from_u64(seed))),
        }
    }

    /// Create a noise source seeded from operating-system entropy.
    pub fn from_entropy() -> Self {
        NoiseSource {
            inner: Arc::new(Mutex::new(StdRng::from_entropy())),
        }
    }

    /// Draw a uniform sample in `[0, 1)`.
    pub fn uniform(&self) -> f64 {
        self.inner.lock().gen::<f64>()
    }

    /// Draw a uniform sample in the open interval `(-0.5, 0.5)`, never
    /// exactly `-0.5` (so that `ln(1 - 2|u|)` stays finite).
    pub fn centered_uniform(&self) -> f64 {
        loop {
            let u = self.inner.lock().gen::<f64>() - 0.5;
            if u > -0.5 {
                return u;
            }
        }
    }

    /// Run a closure with exclusive access to the underlying RNG. Used by
    /// mechanisms that need several draws atomically.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_sources_are_reproducible() {
        let a = NoiseSource::seeded(7);
        let b = NoiseSource::seeded(7);
        let xs: Vec<f64> = (0..16).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.uniform()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = NoiseSource::seeded(1);
        let b = NoiseSource::seeded(2);
        let xs: Vec<f64> = (0..8).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn centered_uniform_is_in_open_interval() {
        let s = NoiseSource::seeded(3);
        for _ in 0..10_000 {
            let u = s.centered_uniform();
            assert!(u > -0.5 && u < 0.5);
        }
    }

    #[test]
    fn clones_share_state() {
        // Clones advance the same generator: interleaved draws from a clone
        // must not repeat the original's stream.
        let a = NoiseSource::seeded(9);
        let b = a.clone();
        let x = a.uniform();
        let y = b.uniform();
        let z = a.uniform();
        assert_ne!(x, y);
        assert_ne!(y, z);
    }
}
