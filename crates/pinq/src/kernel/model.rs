//! The pure privacy state machine — every ε transition as side-effect-free
//! arithmetic.
//!
//! This module is the *verified core* of the kernel (the Featherweight-PINQ
//! reduction): a value-semantics [`KernelState`] holding per-root budgets,
//! charge-DAG topology and partition-ledger maxima, plus a [`Transition`]
//! enum applied through one function, [`step`]. `step` never touches a
//! lock, a clock, a sink or an allocator-backed global: given the same
//! state and transition it returns the same successor state and the same
//! per-root deltas, which is what makes it enumerable and property-testable
//! (`tests/kernel_model.rs`).
//!
//! The concurrent shells in [`super::budget`], `super::charge` and
//! `super::partition` hold the *same* primitive values ([`RootBudget`],
//! [`LedgerBook`]) behind their fine-grained mutexes and delegate all
//! arithmetic here, so the live engine and the model cannot drift: the
//! tolerance check, the refund clamp, the max-of-parts forwarding rule and
//! the charge-path narration have exactly one implementation each.
//!
//! Invariants `step` maintains (and the enumeration suite asserts):
//!
//! * **Budget soundness** — `spent ≤ total + TOLERANCE` for every root.
//! * **Monotone spend under charges** — a successful `Charge` never lowers
//!   any root's `spent`.
//! * **Max-of-parts** — every ledger's `max` equals the fold of its part
//!   spends, and only increases of the max are forwarded upstream.
//! * **Transactional `Combined`** — a multi-parent charge that fails on a
//!   later parent refunds the earlier ones; the failed transition is free
//!   (up to float rounding of the charge/refund round-trip).
//! * **Refund inverse** — refunding a just-applied charge restores each
//!   root's spend (clamped at zero, attributing only the applied delta).

use crate::error::{Error, Result};

/// Tolerance for the budget-exceeded check, so that spending exactly the
/// remaining budget succeeds despite floating-point accumulation. This is
/// the *only* comparison constant in the privacy arithmetic.
pub const TOLERANCE: f64 = 1e-9;

// ---------------------------------------------------------------------
// Pure primitives — the values the concurrent shells guard with mutexes.
// ---------------------------------------------------------------------

/// One root budget: the data owner's total grant and the ε spent so far.
/// Plain arithmetic on copyable values; the [`super::budget::Accountant`]
/// holds one of these behind its lock and adds logging around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootBudget {
    /// Total ε granted (initial budget plus later grants).
    pub total: f64,
    /// Cumulative ε spent.
    pub spent: f64,
}

impl RootBudget {
    /// A fresh budget with nothing spent.
    ///
    /// # Panics
    /// Panics if `total` is negative, NaN or infinite.
    pub fn new(total: f64) -> Self {
        assert!(
            total.is_finite() && total >= 0.0,
            "budget must be finite and non-negative, got {total}"
        );
        RootBudget { total, spent: 0.0 }
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Attempt to spend `eps`. Fails without mutating when the budget would
    /// be exceeded beyond [`TOLERANCE`].
    pub fn try_charge(&mut self, eps: f64) -> Result<()> {
        debug_assert!(eps >= 0.0, "negative charge {eps}");
        if self.spent + eps > self.total + TOLERANCE {
            return Err(Error::BudgetExceeded {
                requested: eps,
                available: self.remaining(),
            });
        }
        self.spent += eps;
        Ok(())
    }

    /// Return `eps` to the budget, clamping at zero. Returns the *applied*
    /// delta (`before - after`), which is what refund ledger entries must
    /// attribute so per-operator totals keep summing to `spent` exactly.
    pub fn refund(&mut self, eps: f64) -> f64 {
        debug_assert!(eps >= 0.0);
        let before = self.spent;
        self.spent = (self.spent - eps).max(0.0);
        before - self.spent
    }

    /// Enlarge the budget by `extra` ε (a data-owner operation).
    ///
    /// # Panics
    /// Panics on a negative, NaN or infinite grant.
    pub fn grant(&mut self, extra: f64) {
        assert!(
            extra.is_finite() && extra >= 0.0,
            "grant must be finite and non-negative, got {extra}"
        );
        self.total += extra;
    }
}

/// Per-part spends of one partition, plus the running maximum — the
/// parallel-composition ledger as a pure value. The
/// crate-internal `PartitionLedger` holds one of these behind its lock.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerBook {
    /// Cumulative spend per part.
    pub spends: Vec<f64>,
    /// `spends.iter().fold(0.0, f64::max)`, maintained incrementally.
    pub max: f64,
}

impl LedgerBook {
    /// A book with `parts` parts, nothing spent.
    pub fn new(parts: usize) -> Self {
        LedgerBook {
            spends: vec![0.0; parts],
            max: 0.0,
        }
    }

    /// The spend recorded for `slot` (0.0 for a slot the book never saw —
    /// compacted snapshots may omit sibling columns).
    pub fn part_spent(&self, slot: usize) -> f64 {
        self.spends.get(slot).copied().unwrap_or(0.0)
    }

    /// The delta a charge of `eps` on `slot` would forward upstream right
    /// now: the increase of the maximum, usually zero for a part spending
    /// under the current max. Pure — this is [`part_forward`] on the
    /// book's current values.
    pub fn forwardable(&self, slot: usize, eps: f64) -> f64 {
        part_forward(self.part_spent(slot), self.max, eps)
    }

    /// Commit a charge of `eps` on `slot` (the upstream forward having
    /// succeeded): bump the part and fold it into the max. Only the
    /// incremented part can raise the max, so this is O(1).
    pub fn commit(&mut self, slot: usize, eps: f64) {
        self.spends[slot] += eps;
        self.max = self.spends[slot].max(self.max);
    }

    /// Undo a charge of `eps` on `slot`, clamping the part at zero.
    /// Returns the decrease of the maximum — the amount the caller must
    /// refund upstream (zero unless the refunded part was holding the max).
    /// The rescan runs only in that case, keeping the common path O(1).
    pub fn refund(&mut self, slot: usize, eps: f64) -> f64 {
        let before = self.part_spent(slot);
        if slot < self.spends.len() {
            self.spends[slot] = (before - eps).max(0.0);
        }
        if before >= self.max {
            let new_max = self.spends.iter().cloned().fold(0.0, f64::max);
            if new_max < self.max {
                let drop = self.max - new_max;
                self.max = new_max;
                return drop;
            }
        }
        0.0
    }
}

/// The parallel-composition forwarding rule in one expression: with a part
/// at `part_spent` under a ledger maximum of `max`, a further charge of
/// `eps` forwards `(part_spent + eps).max(max) - max` to the source.
pub fn part_forward(part_spent: f64, max: f64, eps: f64) -> f64 {
    (part_spent + eps).max(max) - max
}

// ---------------------------------------------------------------------
// Charge-path narration — the one spelling of every path segment.
// ---------------------------------------------------------------------

/// The terminal segment of every charge path.
pub const SEG_ROOT: &str = "root";

/// The segment a stability scaling contributes, e.g. `"scale(x2)"`.
pub fn seg_scale(factor: f64) -> String {
    format!("scale(x{factor})")
}

/// The segment a partition part contributes, e.g. `"part[3]"`.
pub fn seg_part(index: usize) -> String {
    format!("part[{index}]")
}

/// The segment one input of a multi-parent charge contributes, e.g.
/// `"in[0]"`.
pub fn seg_in(index: usize) -> String {
    format!("in[{index}]")
}

/// Append `segment` to a `/`-separated charge path (no leading slash on an
/// empty prefix).
pub fn join_path(prefix: &str, segment: &str) -> String {
    if prefix.is_empty() {
        segment.to_string()
    } else {
        format!("{prefix}/{segment}")
    }
}

// ---------------------------------------------------------------------
// The explicit state machine.
// ---------------------------------------------------------------------

/// Index of a root budget in a [`KernelState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RootId(pub usize);

/// Index of a charge-DAG node in a [`KernelState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Index of a partition ledger in a [`KernelState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LedgerId(pub usize);

/// One charge-DAG node, by value. Mirrors the live crate-internal
/// `ChargeNode` shape, with `Arc` pointers replaced by
/// arena ids so the whole topology is a plain cloneable value.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeSpec {
    /// Charges land directly on a root budget.
    Root(RootId),
    /// Charges are multiplied by `factor` and forwarded to `parent`.
    Scaled {
        /// Upstream node.
        parent: NodeId,
        /// Stability multiplier.
        factor: f64,
    },
    /// Charges are forwarded, unscaled, to every parent — transactionally.
    Combined(Vec<NodeId>),
    /// Charges flow through a partition ledger (max-of-parts accounting).
    Part {
        /// The ledger mediating this part.
        ledger: LedgerId,
        /// Part index as narrated in charge paths (`part[index]`).
        index: usize,
        /// Column of the ledger book holding this part's spend. Equal to
        /// `index` for live states; compacted snapshots (built from an
        /// explain tree that only kept one part's column) may remap it.
        slot: usize,
    },
}

/// One partition ledger: the node its max-increases forward to, plus the
/// per-part book.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    /// Upstream node charged with increases of the maximum.
    pub parent: NodeId,
    /// Per-part spends and the running maximum.
    pub book: LedgerBook,
}

/// The complete privacy-relevant state: root budgets, DAG topology and
/// ledger books. Value semantics — `clone()` is a full snapshot, which is
/// what lets [`step`] be pure and lets tests enumerate interleavings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelState {
    /// Root budgets, indexed by [`RootId`].
    pub roots: Vec<RootBudget>,
    /// Charge-DAG nodes, indexed by [`NodeId`].
    pub nodes: Vec<NodeSpec>,
    /// Partition ledgers, indexed by [`LedgerId`].
    pub ledgers: Vec<Ledger>,
}

impl KernelState {
    /// An empty state.
    pub fn new() -> Self {
        KernelState::default()
    }

    /// Add a root budget; returns its id.
    pub fn add_root(&mut self, budget: RootBudget) -> RootId {
        self.roots.push(budget);
        RootId(self.roots.len() - 1)
    }

    /// Add a DAG node; returns its id. Debug-asserts referenced ids exist.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        debug_assert!(match &spec {
            NodeSpec::Root(r) => r.0 < self.roots.len(),
            NodeSpec::Scaled { parent, .. } => parent.0 < self.nodes.len(),
            NodeSpec::Combined(ps) => ps.iter().all(|p| p.0 < self.nodes.len()),
            NodeSpec::Part { ledger, .. } => ledger.0 < self.ledgers.len(),
        });
        self.nodes.push(spec);
        NodeId(self.nodes.len() - 1)
    }

    /// Add a ledger with `parts` parts forwarding to `parent`; returns its
    /// id. Use [`KernelState::add_node`] with [`NodeSpec::Part`] to expose
    /// its parts as chargeable nodes.
    pub fn add_ledger(&mut self, parent: NodeId, parts: usize) -> LedgerId {
        self.add_ledger_book(parent, LedgerBook::new(parts))
    }

    /// Add a ledger with an explicit pre-populated book (snapshot compiles).
    pub fn add_ledger_book(&mut self, parent: NodeId, book: LedgerBook) -> LedgerId {
        debug_assert!(parent.0 < self.nodes.len());
        self.ledgers.push(Ledger { parent, book });
        LedgerId(self.ledgers.len() - 1)
    }
}

/// One privacy-relevant state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Transition {
    /// Spend `eps` through a DAG node (an aggregation paying for a
    /// release). Fails, applying nothing durable, when any reached root
    /// would exceed its budget.
    Charge {
        /// Node the aggregation charges through.
        node: NodeId,
        /// ε requested (before any scaling along the walk).
        eps: f64,
    },
    /// Undo a previous successful charge of `eps` through the same node.
    Refund {
        /// Node the original charge went through.
        node: NodeId,
        /// ε originally requested.
        eps: f64,
    },
    /// Enlarge a root budget (data-owner operation; timed release).
    Grant {
        /// Root to enlarge.
        root: RootId,
        /// Additional ε.
        extra: f64,
    },
    /// Add a node to the charge DAG (a transformation deriving a new
    /// queryable). Ids are assigned densely: the new node is
    /// `NodeId(state.nodes.len())` of the pre-transition state.
    ExtendDag {
        /// The node to add.
        spec: NodeSpec,
    },
    /// Add a root budget (a data owner protecting a new dataset). The new
    /// root is `RootId(state.roots.len())` of the pre-transition state.
    NewRoot {
        /// Total ε of the new budget.
        total: f64,
    },
    /// Add a partition ledger (a `partition` operator splitting a
    /// queryable). The new ledger is `LedgerId(state.ledgers.len())` of
    /// the pre-transition state.
    NewLedger {
        /// Node the ledger forwards max-increases to.
        parent: NodeId,
        /// Number of parts.
        parts: usize,
    },
}

/// The ε that landed on one root as part of a transition, with the charge
/// path the walk narrated. Zero-delta entries are kept (a partition charge
/// absorbed under the current max still narrates every root it would have
/// reached), and refund deltas are negative.
#[derive(Debug, Clone, PartialEq)]
pub struct RootDelta {
    /// Root the delta applied to.
    pub root: RootId,
    /// Full leaf-to-root charge path, e.g. `"part[3]/scale(x2)/root"`.
    pub path: String,
    /// Signed ε applied (negative for refunds; zero for absorbed charges).
    pub eps: f64,
}

/// Whether a walk really spends or merely predicts.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Enforce budgets, commit ledger books, roll back combined failures.
    Charge,
    /// Read-only: same deltas and paths, no mutation, cannot fail.
    Predict,
}

/// Apply one transition to `state`, returning the successor state and the
/// per-root deltas it applied. Pure: `state` is never mutated; on `Err`
/// nothing durable happened (a failed `Combined` charge is rolled back
/// inside the discarded successor, exactly as the live engine refunds its
/// already-charged parents).
pub fn step(state: &KernelState, transition: &Transition) -> Result<(KernelState, Vec<RootDelta>)> {
    let mut next = state.clone();
    let mut deltas = Vec::new();
    match transition {
        Transition::Charge { node, eps } => {
            walk(&mut next, *node, *eps, "", Mode::Charge, &mut deltas)?;
        }
        Transition::Refund { node, eps } => {
            walk_refund(&mut next, *node, *eps, "", &mut deltas);
        }
        Transition::Grant { root, extra } => {
            next.roots[root.0].grant(*extra);
        }
        Transition::ExtendDag { spec } => {
            next.add_node(spec.clone());
        }
        Transition::NewRoot { total } => {
            next.add_root(RootBudget::new(*total));
        }
        Transition::NewLedger { parent, parts } => {
            next.add_ledger(*parent, *parts);
        }
    }
    Ok((next, deltas))
}

/// Predict the per-root deltas a `Charge { node, eps }` issued *now* would
/// apply, without enforcing budgets and without mutating anything — the
/// charge walk of [`step`] run in read-only mode against the same state.
/// Zero-delta entries are kept so callers see every root the walk reaches.
pub fn predict(state: &KernelState, node: NodeId, eps: f64) -> Vec<RootDelta> {
    let mut out = Vec::new();
    // A predict walk cannot fail and never writes; the clone-free borrow is
    // safe because Mode::Predict takes no &mut paths.
    let mut scratch = state.clone();
    walk(&mut scratch, node, eps, "", Mode::Predict, &mut out).expect("predict walks cannot fail");
    out
}

/// The one charge walk: narrates the path, scales through `Scaled`,
/// iterates `Combined` transactionally, and applies max-of-parts
/// forwarding at `Part` nodes. `Mode::Predict` computes identical deltas
/// while guaranteeing no mutation and no failure.
fn walk(
    st: &mut KernelState,
    node: NodeId,
    eps: f64,
    path: &str,
    mode: Mode,
    out: &mut Vec<RootDelta>,
) -> Result<()> {
    match st.nodes[node.0].clone() {
        NodeSpec::Root(root) => {
            let full = join_path(path, SEG_ROOT);
            if mode == Mode::Charge {
                st.roots[root.0].try_charge(eps)?;
            }
            out.push(RootDelta {
                root,
                path: full,
                eps,
            });
            Ok(())
        }
        NodeSpec::Scaled { parent, factor } => walk(
            st,
            parent,
            eps * factor,
            &join_path(path, &seg_scale(factor)),
            mode,
            out,
        ),
        NodeSpec::Combined(parents) => {
            for (i, p) in parents.iter().enumerate() {
                let seg = join_path(path, &seg_in(i));
                if let Err(e) = walk(st, *p, eps, &seg, mode, out) {
                    // Transactional rollback: refund the parents already
                    // charged so a failed multi-input aggregation is free.
                    let mut discard = Vec::new();
                    for (j, q) in parents[..i].iter().enumerate() {
                        walk_refund(st, *q, eps, &join_path(path, &seg_in(j)), &mut discard);
                    }
                    return Err(e);
                }
            }
            Ok(())
        }
        NodeSpec::Part {
            ledger,
            index,
            slot,
        } => {
            let seg = join_path(path, &seg_part(index));
            let delta = st.ledgers[ledger.0].book.forwardable(slot, eps);
            let parent = st.ledgers[ledger.0].parent;
            if delta > 0.0 {
                walk(st, parent, delta, &seg, mode, out)?;
            } else {
                // Absorbed under the current max: narrate zero deltas for
                // every root upstream, keeping per-path call counts honest.
                walk(st, parent, 0.0, &seg, Mode::Predict, out).expect("predict walks cannot fail");
            }
            if mode == Mode::Charge {
                st.ledgers[ledger.0].book.commit(slot, eps);
            }
            Ok(())
        }
    }
}

/// The one refund walk, mirroring [`walk`]: clamps at zero per root
/// (attributing applied deltas, negative), and refunds upstream only the
/// decrease of a ledger maximum.
fn walk_refund(st: &mut KernelState, node: NodeId, eps: f64, path: &str, out: &mut Vec<RootDelta>) {
    match st.nodes[node.0].clone() {
        NodeSpec::Root(root) => {
            let applied = st.roots[root.0].refund(eps);
            out.push(RootDelta {
                root,
                path: join_path(path, SEG_ROOT),
                eps: -applied,
            });
        }
        NodeSpec::Scaled { parent, factor } => walk_refund(
            st,
            parent,
            eps * factor,
            &join_path(path, &seg_scale(factor)),
            out,
        ),
        NodeSpec::Combined(parents) => {
            for (i, p) in parents.iter().enumerate() {
                walk_refund(st, *p, eps, &join_path(path, &seg_in(i)), out);
            }
        }
        NodeSpec::Part {
            ledger,
            index,
            slot,
        } => {
            let upstream = st.ledgers[ledger.0].book.refund(slot, eps);
            if upstream > 0.0 {
                let parent = st.ledgers[ledger.0].parent;
                walk_refund(
                    st,
                    parent,
                    upstream,
                    &join_path(path, &seg_part(index)),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root_state(total: f64) -> (KernelState, NodeId) {
        let mut st = KernelState::new();
        let r = st.add_root(RootBudget::new(total));
        let n = st.add_node(NodeSpec::Root(r));
        (st, n)
    }

    #[test]
    fn step_is_pure() {
        let (st, n) = root_state(1.0);
        let before = st.clone();
        let (next, deltas) = step(&st, &Transition::Charge { node: n, eps: 0.25 }).unwrap();
        assert_eq!(st, before, "step must not mutate its input");
        assert!((next.roots[0].spent - 0.25).abs() < 1e-15);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].path, "root");
    }

    #[test]
    fn charge_scales_and_narrates() {
        let (mut st, n) = root_state(10.0);
        let s = st.add_node(NodeSpec::Scaled {
            parent: n,
            factor: 2.0,
        });
        let (next, deltas) = step(&st, &Transition::Charge { node: s, eps: 1.0 }).unwrap();
        assert!((next.roots[0].spent - 2.0).abs() < 1e-15);
        assert_eq!(deltas[0].path, "scale(x2)/root");
        assert!((deltas[0].eps - 2.0).abs() < 1e-15);
    }

    #[test]
    fn partition_forwards_only_max_increases() {
        let (mut st, n) = root_state(1.0);
        let l = st.add_ledger(n, 2);
        let p0 = st.add_node(NodeSpec::Part {
            ledger: l,
            index: 0,
            slot: 0,
        });
        let p1 = st.add_node(NodeSpec::Part {
            ledger: l,
            index: 1,
            slot: 1,
        });
        let (st, d0) = step(&st, &Transition::Charge { node: p0, eps: 0.3 }).unwrap();
        assert_eq!(
            d0,
            vec![RootDelta {
                root: RootId(0),
                path: "part[0]/root".into(),
                eps: 0.3
            }]
        );
        let (st, d1) = step(&st, &Transition::Charge { node: p1, eps: 0.2 }).unwrap();
        assert_eq!(d1[0].eps, 0.0, "absorbed under the max, zero delta kept");
        assert_eq!(d1[0].path, "part[1]/root");
        assert!((st.roots[0].spent - 0.3).abs() < 1e-15);
        assert!((st.ledgers[0].book.max - 0.3).abs() < 1e-15);
    }

    #[test]
    fn combined_failure_is_free_and_predict_never_fails() {
        let mut st = KernelState::new();
        let rich = st.add_root(RootBudget::new(5.0));
        let poor = st.add_root(RootBudget::new(0.1));
        let a = st.add_node(NodeSpec::Root(rich));
        let b = st.add_node(NodeSpec::Root(poor));
        let c = st.add_node(NodeSpec::Combined(vec![a, b]));
        let err = step(&st, &Transition::Charge { node: c, eps: 1.0 });
        assert!(err.is_err());
        // Predict on the same shape reports both paths with full deltas.
        let predicted = predict(&st, c, 1.0);
        assert_eq!(predicted.len(), 2);
        assert_eq!(predicted[0].path, "in[0]/root");
        assert_eq!(predicted[1].path, "in[1]/root");
        assert!(predicted.iter().all(|d| (d.eps - 1.0).abs() < 1e-15));
        // Nothing was spent anywhere.
        assert_eq!(st.roots[0].spent, 0.0);
        assert_eq!(st.roots[1].spent, 0.0);
    }

    #[test]
    fn refund_is_an_inverse_of_charge() {
        let (mut st, n) = root_state(1.0);
        let l = st.add_ledger(n, 2);
        let p = st.add_node(NodeSpec::Part {
            ledger: l,
            index: 1,
            slot: 1,
        });
        let (st1, _) = step(&st, &Transition::Charge { node: p, eps: 0.4 }).unwrap();
        let (st2, deltas) = step(&st1, &Transition::Refund { node: p, eps: 0.4 }).unwrap();
        assert!((st2.roots[0].spent).abs() < 1e-15);
        assert!((st2.ledgers[0].book.max).abs() < 1e-15);
        assert_eq!(deltas.len(), 1);
        assert!(
            (deltas[0].eps + 0.4).abs() < 1e-15,
            "refund deltas are negative"
        );
    }
}
