//! The charge graph: how aggregation spends propagate to source budgets.
//!
//! Transformations build a DAG from derived queryables back to root
//! accountants. Charging a derived node walks the DAG:
//!
//! * `Root` — spend directly against the dataset's [`Accountant`].
//! * `Scaled` — multiply by a stability factor (e.g. ×2 across a `GroupBy`).
//! * `Combined` — charge several parents (e.g. both inputs of a `Join`);
//!   applied transactionally with rollback if a later parent fails.
//! * `PartitionPart` — charge through a [`PartitionLedger`], which forwards
//!   only increases of the *maximum* child spend to its parent (parallel
//!   composition).
//!
//! The walk also *narrates itself*: each hop appends a segment to a charge
//! path (`"scale(x2)/part[3]/root"`), which the accountant records in its
//! ledger alongside the operator name and analysis label. That provenance
//! is what turns the spend log into an owner-side audit trail — the paper's
//! mediated model needs the owner to explain not just *how much* ε left the
//! budget but *through which composition* it did.

use super::budget::{Accountant, ChargeMeta};
use super::model::{join_path, seg_in, seg_part, seg_scale, SEG_ROOT};
use super::partition::PartitionLedger;
use crate::error::Result;
use std::sync::Arc;

/// A node in the charge DAG. Crate-internal: analysts only see queryables,
/// and the rest of the crate only *holds* nodes — construction and every
/// ε-moving walk are sealed inside the kernel (built via
/// [`crate::kernel::root_node`] and friends; the `kernel-seal` CI check
/// flags variant construction outside `crates/pinq/src/kernel/`).
#[derive(Debug, Clone)]
pub(crate) enum ChargeNode {
    /// Charges land directly on a dataset budget.
    Root(Accountant),
    /// Charges are multiplied by `factor` and forwarded to `parent`.
    Scaled {
        /// Upstream node.
        parent: Arc<ChargeNode>,
        /// Stability multiplier.
        factor: f64,
    },
    /// Charges are forwarded, unscaled, to every parent.
    Combined(Vec<Arc<ChargeNode>>),
    /// Charges flow through a partition ledger (max-of-parts accounting).
    PartitionPart {
        /// The ledger mediating this part.
        ledger: Arc<PartitionLedger>,
        /// Part index (narrated as `part[index]` in charge paths).
        index: usize,
    },
}

impl ChargeNode {
    /// Spend `eps` through this node. On failure nothing is spent anywhere.
    #[cfg(test)]
    pub(crate) fn charge(&self, eps: f64) -> Result<()> {
        self.charge_with(eps, &ChargeMeta::new("direct", None), "")
    }

    /// Spend `eps` through this node, threading provenance: `meta` names
    /// the initiating operator, `path` accumulates one segment per hop.
    pub(in crate::kernel) fn charge_with(
        &self,
        eps: f64,
        meta: &ChargeMeta,
        path: &str,
    ) -> Result<()> {
        self.charge_traced(eps, meta, path, &mut None)
    }

    /// [`ChargeNode::charge_with`] that additionally records, for every root
    /// accountant the walk reaches, the full charge path and the ε that
    /// actually landed there — captured *atomically with the charge*. Under
    /// a partition ledger the recorded ε is the forwarded max-increase
    /// (possibly zero), computed while the ledger lock is held, so charges
    /// racing in from pool workers can never make the trace disagree with
    /// the ledger. On `Err` the caller must discard the trace: a `Combined`
    /// rollback may leave entries for parents charged and then refunded.
    pub(in crate::kernel) fn charge_traced(
        &self,
        eps: f64,
        meta: &ChargeMeta,
        path: &str,
        trace: &mut Option<&mut Vec<(String, f64)>>,
    ) -> Result<()> {
        match self {
            ChargeNode::Root(acct) => {
                let full = join_path(path, SEG_ROOT);
                acct.charge_with(eps, meta, &full)?;
                if let Some(t) = trace.as_mut() {
                    t.push((full, eps));
                }
                Ok(())
            }
            ChargeNode::Scaled { parent, factor } => parent.charge_traced(
                eps * factor,
                meta,
                &join_path(path, &seg_scale(*factor)),
                trace,
            ),
            ChargeNode::Combined(parents) => {
                for (i, p) in parents.iter().enumerate() {
                    let seg = join_path(path, &seg_in(i));
                    if let Err(e) = p.charge_traced(eps, meta, &seg, trace) {
                        // Roll back the parents already charged so that a
                        // failed multi-input aggregation is free.
                        for (j, q) in parents[..i].iter().enumerate() {
                            q.refund_with(eps, meta, &join_path(path, &seg_in(j)));
                        }
                        return Err(e);
                    }
                }
                Ok(())
            }
            ChargeNode::PartitionPart { ledger, index } => ledger.charge_child_traced(
                *index,
                eps,
                meta,
                &join_path(path, &seg_part(*index)),
                trace,
            ),
        }
    }

    /// Side-effect-free prediction: the per-root `(full_path, ε)` deltas
    /// that a `charge_with(eps, …)` issued *now* would apply, given current
    /// ledger state. Zero-delta entries are kept so callers see every root
    /// the walk can reach. Nothing is spent anywhere.
    pub(in crate::kernel) fn predict_into(
        &self,
        eps: f64,
        path: &str,
        out: &mut Vec<(String, f64)>,
    ) {
        match self {
            ChargeNode::Root(_) => out.push((join_path(path, SEG_ROOT), eps)),
            ChargeNode::Scaled { parent, factor } => {
                parent.predict_into(eps * factor, &join_path(path, &seg_scale(*factor)), out)
            }
            ChargeNode::Combined(parents) => {
                for (i, p) in parents.iter().enumerate() {
                    p.predict_into(eps, &join_path(path, &seg_in(i)), out);
                }
            }
            ChargeNode::PartitionPart { ledger, index } => {
                let delta = ledger.predict_child(*index, eps);
                ledger
                    .parent()
                    .predict_into(delta, &join_path(path, &seg_part(*index)), out);
            }
        }
    }

    /// Snapshot the charge DAG into the public structured form used by
    /// [`crate::explain`]: the same shape `describe()` narrates, plus the
    /// live budget / ledger numbers at each node. Side-effect-free.
    pub(crate) fn snapshot(&self) -> crate::explain::ChargeTree {
        use crate::explain::ChargeTree;
        match self {
            ChargeNode::Root(acct) => ChargeTree::Root {
                spent: acct.spent(),
                total: acct.total(),
            },
            ChargeNode::Scaled { parent, factor } => ChargeTree::Scaled {
                factor: *factor,
                child: Box::new(parent.snapshot()),
            },
            ChargeNode::Combined(parents) => {
                ChargeTree::Combined(parents.iter().map(|p| p.snapshot()).collect())
            }
            ChargeNode::PartitionPart { ledger, index } => {
                let spends = ledger.spends();
                ChargeTree::Part {
                    index: *index,
                    parts: spends.len(),
                    part_spent: spends.get(*index).copied().unwrap_or(0.0),
                    max_spent: spends.iter().cloned().fold(0.0, f64::max),
                    child: Box::new(ledger.parent().snapshot()),
                }
            }
        }
    }

    /// Render the static charge path from this node to its root(s) without
    /// charging anything — the same segments `charge_with` would narrate,
    /// composed leaf-to-root (e.g. `"scale(x2)/part[3]/root"`). Used to tag
    /// profiler spans with the provenance an aggregation *would* charge
    /// through; pure metadata, safe on the analyst side.
    pub(crate) fn describe(&self) -> String {
        match self {
            ChargeNode::Root(_) => "root".to_string(),
            ChargeNode::Scaled { parent, factor } => {
                format!("scale(x{factor})/{}", parent.describe())
            }
            ChargeNode::Combined(parents) => {
                let inner: Vec<String> = parents
                    .iter()
                    .enumerate()
                    .map(|(i, p)| format!("in[{i}]:{}", p.describe()))
                    .collect();
                format!("({})", inner.join("+"))
            }
            ChargeNode::PartitionPart { ledger, index } => {
                format!("part[{index}]/{}", ledger.parent().describe())
            }
        }
    }

    /// Undo a previous successful `charge(eps)`.
    #[cfg(test)]
    pub(crate) fn refund(&self, eps: f64) {
        self.refund_with(eps, &ChargeMeta::new("direct", None), "");
    }

    /// Undo a previous successful `charge_with`, with the same provenance.
    pub(in crate::kernel) fn refund_with(&self, eps: f64, meta: &ChargeMeta, path: &str) {
        match self {
            ChargeNode::Root(acct) => acct.refund_with(eps, meta, &join_path(path, SEG_ROOT)),
            ChargeNode::Scaled { parent, factor } => {
                parent.refund_with(eps * factor, meta, &join_path(path, &seg_scale(*factor)))
            }
            ChargeNode::Combined(parents) => {
                for (i, p) in parents.iter().enumerate() {
                    p.refund_with(eps, meta, &join_path(path, &seg_in(i)));
                }
            }
            ChargeNode::PartitionPart { ledger, index } => {
                ledger.refund_child_with(*index, eps, meta, &join_path(path, &seg_part(*index)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_nodes_multiply_charges() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        };
        scaled.charge(1.0).unwrap();
        assert!((acct.spent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nested_scaling_composes_multiplicatively() {
        let acct = Accountant::new(100.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let a = Arc::new(ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        });
        let b = ChargeNode::Scaled {
            parent: a,
            factor: 3.0,
        };
        b.charge(1.0).unwrap();
        assert!((acct.spent() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn combined_charges_every_parent() {
        let a = Accountant::new(5.0);
        let b = Accountant::new(5.0);
        let node = ChargeNode::Combined(vec![
            Arc::new(ChargeNode::Root(a.clone())),
            Arc::new(ChargeNode::Root(b.clone())),
        ]);
        node.charge(1.5).unwrap();
        assert!((a.spent() - 1.5).abs() < 1e-12);
        assert!((b.spent() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn combined_rolls_back_on_partial_failure() {
        let rich = Accountant::new(5.0);
        let poor = Accountant::new(0.1);
        let node = ChargeNode::Combined(vec![
            Arc::new(ChargeNode::Root(rich.clone())),
            Arc::new(ChargeNode::Root(poor.clone())),
        ]);
        assert!(node.charge(1.0).is_err());
        // The rich parent must have been refunded.
        assert_eq!(rich.spent(), 0.0);
        assert_eq!(poor.spent(), 0.0);
    }

    #[test]
    fn refund_walks_the_graph() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = ChargeNode::Scaled {
            parent: root,
            factor: 4.0,
        };
        scaled.charge(1.0).unwrap();
        scaled.refund(1.0);
        assert_eq!(acct.spent(), 0.0);
    }

    #[test]
    fn charge_paths_narrate_the_walk() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        };
        let meta = ChargeMeta::new("noisy_count", Some(Arc::from("ports")));
        scaled.charge_with(0.5, &meta, "").unwrap();
        let log = acct.audit_log();
        assert_eq!(log.len(), 1);
        assert_eq!(&*log[0].operator, "noisy_count");
        assert_eq!(&*log[0].path, "scale(x2)/root");
        assert_eq!(log[0].label.as_deref(), Some("ports"));
    }

    #[test]
    fn describe_renders_static_paths_without_charging() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        assert_eq!(root.describe(), "root");
        let scaled = Arc::new(ChargeNode::Scaled {
            parent: root.clone(),
            factor: 2.0,
        });
        assert_eq!(scaled.describe(), "scale(x2)/root");
        let combined = ChargeNode::Combined(vec![root.clone(), scaled.clone()]);
        assert_eq!(combined.describe(), "(in[0]:root+in[1]:scale(x2)/root)");
        let ledger = Arc::new(crate::kernel::partition::PartitionLedger::new(scaled, 4));
        let part = ChargeNode::PartitionPart { ledger, index: 3 };
        assert_eq!(part.describe(), "part[3]/scale(x2)/root");
        // Describing is free: nothing was spent anywhere.
        assert_eq!(acct.spent(), 0.0);
    }

    #[test]
    fn traced_charges_capture_per_root_deltas() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = Arc::new(ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        });
        let ledger = Arc::new(crate::kernel::partition::PartitionLedger::new(scaled, 2));
        let part0 = ChargeNode::PartitionPart {
            ledger: ledger.clone(),
            index: 0,
        };
        let part1 = ChargeNode::PartitionPart { ledger, index: 1 };
        let meta = ChargeMeta::new("noisy_count", None);

        let mut t0 = Vec::new();
        part0
            .charge_traced(0.3, &meta, "", &mut Some(&mut t0))
            .unwrap();
        // First charge raises the max from 0 to 0.3 → ×2 lands on the root.
        assert_eq!(t0, vec![("part[0]/scale(x2)/root".to_string(), 0.6)]);

        let mut t1 = Vec::new();
        part1
            .charge_traced(0.2, &meta, "", &mut Some(&mut t1))
            .unwrap();
        // Under the 0.3 max: nothing forwarded, but the path is still
        // narrated with a zero delta.
        assert_eq!(t1, vec![("part[1]/scale(x2)/root".to_string(), 0.0)]);

        // The traced deltas sum to exactly what the accountant saw.
        let traced: f64 = t0.iter().chain(&t1).map(|(_, d)| d).sum();
        assert!((acct.spent() - traced).abs() < 1e-12);
    }

    #[test]
    fn predict_matches_what_a_charge_would_apply() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let ledger = Arc::new(crate::kernel::partition::PartitionLedger::new(root, 2));
        let part = ChargeNode::PartitionPart {
            ledger: ledger.clone(),
            index: 1,
        };
        let mut predicted = Vec::new();
        part.predict_into(0.4, "", &mut predicted);
        assert_eq!(predicted, vec![("part[1]/root".to_string(), 0.4)]);
        // Prediction is free.
        assert_eq!(acct.spent(), 0.0);
        assert_eq!(ledger.spends(), vec![0.0, 0.0]);

        // After really charging, a second identical charge predicts the
        // same delta a real walk would forward (full eps again: max grows).
        part.charge(0.4).unwrap();
        let mut again = Vec::new();
        part.predict_into(0.4, "", &mut again);
        assert_eq!(again, vec![("part[1]/root".to_string(), 0.4)]);
        // The *other* part predicts a zero delta up to the current max.
        let sibling = ChargeNode::PartitionPart { ledger, index: 0 };
        let mut free = Vec::new();
        sibling.predict_into(0.4, "", &mut free);
        assert_eq!(free, vec![("part[0]/root".to_string(), 0.0)]);
    }

    #[test]
    fn snapshot_mirrors_describe_structure() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = Arc::new(ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        });
        let ledger = Arc::new(crate::kernel::partition::PartitionLedger::new(scaled, 4));
        let part = ChargeNode::PartitionPart { ledger, index: 3 };
        part.charge(0.25).unwrap();
        let tree = part.snapshot();
        assert_eq!(tree.path(), "part[3]/scale(x2)/root");
        match tree {
            crate::explain::ChargeTree::Part {
                index,
                parts,
                part_spent,
                max_spent,
                child,
            } => {
                assert_eq!((index, parts), (3, 4));
                assert!((part_spent - 0.25).abs() < 1e-12);
                assert!((max_spent - 0.25).abs() < 1e-12);
                match *child {
                    crate::explain::ChargeTree::Scaled { factor, child } => {
                        assert_eq!(factor, 2.0);
                        match *child {
                            crate::explain::ChargeTree::Root { spent, total } => {
                                assert!((spent - 0.5).abs() < 1e-12);
                                assert_eq!(total, 10.0);
                            }
                            other => panic!("expected Root, got {other:?}"),
                        }
                    }
                    other => panic!("expected Scaled, got {other:?}"),
                }
            }
            other => panic!("expected Part, got {other:?}"),
        }
    }

    #[test]
    fn combined_paths_name_each_input() {
        let a = Accountant::new(5.0);
        let b = Accountant::new(5.0);
        let node = ChargeNode::Combined(vec![
            Arc::new(ChargeNode::Root(a.clone())),
            Arc::new(ChargeNode::Root(b.clone())),
        ]);
        let meta = ChargeMeta::new("noisy_sum", None);
        node.charge_with(1.0, &meta, "").unwrap();
        assert_eq!(&*a.audit_log()[0].path, "in[0]/root");
        assert_eq!(&*b.audit_log()[0].path, "in[1]/root");
    }
}
