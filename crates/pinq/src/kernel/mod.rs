//! The sealed privacy kernel: every ε-mutating state transition in one
//! auditable module tree.
//!
//! Structure (the Featherweight-PINQ layering):
//!
//! * [`model`] — the **pure core**: [`model::KernelState`] +
//!   [`model::Transition`] + [`model::step`], side-effect-free arithmetic
//!   the test suite enumerates and property-checks. All privacy constants
//!   and formulas (tolerance, stability scaling, max-of-parts forwarding,
//!   refund clamping, charge-path narration) have exactly one definition
//!   here.
//! * [`budget`] — the [`budget::Accountant`] shell: a
//!   [`model::RootBudget`] behind a mutex, plus audit-log, sink-event and
//!   phase-observation mechanics. Public, because data owners configure
//!   budgets through it.
//! * `charge` (crate-internal) — the live charge DAG (`ChargeNode`)
//!   whose walks mirror [`model::step`]'s `Charge`/`Refund` transitions
//!   node-for-node.
//! * `partition` (crate-internal) — the parallel-composition ledger: a
//!   [`model::LedgerBook`] behind a mutex.
//!
//! **The seal:** every mutating entry point of the shells
//! (`Accountant::charge_with`, `ChargeNode::charge_traced`,
//! `PartitionLedger::charge_child_traced`, the node/ledger constructors, …)
//! is `pub(in crate::kernel)`. The rest of the crate composes privacy
//! state exclusively through the oblivious functions below — it can hold
//! and describe `ChargeNode`s but cannot construct them or move ε
//! through them except via this module. CI enforces the boundary with the
//! `kernel-seal` static check (`scripts/kernel_seal.sh`), which fails
//! naming the offending path if privileged symbols appear outside
//! `crates/pinq/src/kernel/`.

pub mod budget;
pub(crate) mod charge;
pub mod model;
pub(crate) mod partition;

pub(crate) use charge::ChargeNode;

use crate::error::Result;
use budget::{Accountant, ChargeMeta};
use model::{LedgerBook, NodeSpec};
use partition::PartitionLedger;
use std::sync::Arc;

// ---------------------------------------------------------------------
// DAG construction — the only way the rest of the crate grows the charge
// graph (the live counterpart of `Transition::ExtendDag`/`NewLedger`).
// ---------------------------------------------------------------------

/// A root node charging directly against one dataset budget.
pub(crate) fn root_node(budget: &Accountant) -> Arc<ChargeNode> {
    Arc::new(ChargeNode::Root(budget.clone()))
}

/// The charge node protecting a dataset guarded by several budgets at
/// once: a single root for one accountant, a transactional `Combined` of
/// roots otherwise (every budget must afford every charge).
pub(crate) fn shared_root_node(budgets: &[&Accountant]) -> Arc<ChargeNode> {
    if budgets.len() == 1 {
        root_node(budgets[0])
    } else {
        Arc::new(ChargeNode::Combined(
            budgets.iter().map(|b| root_node(b)).collect(),
        ))
    }
}

/// The charge node for a two-input transformation (e.g. `join`): each
/// input charged through its own stability scaling, transactionally.
pub(crate) fn scaled_pair(
    left: &Arc<ChargeNode>,
    left_factor: f64,
    right: &Arc<ChargeNode>,
    right_factor: f64,
) -> Arc<ChargeNode> {
    Arc::new(ChargeNode::Combined(vec![
        Arc::new(ChargeNode::Scaled {
            parent: left.clone(),
            factor: left_factor,
        }),
        Arc::new(ChargeNode::Scaled {
            parent: right.clone(),
            factor: right_factor,
        }),
    ]))
}

/// The charge nodes for the parts of a `partition`: one shared ledger
/// (max-of-parts accounting) forwarding through a stability scaling of
/// `parent`, and one `PartitionPart` node per part. The live counterpart
/// of a `NewLedger` transition followed by one `ExtendDag` per part.
pub(crate) fn partition_nodes(
    parent: &Arc<ChargeNode>,
    factor: f64,
    parts: usize,
) -> Vec<Arc<ChargeNode>> {
    let ledger = Arc::new(PartitionLedger::new(
        Arc::new(ChargeNode::Scaled {
            parent: parent.clone(),
            factor,
        }),
        parts,
    ));
    (0..parts)
        .map(|index| {
            Arc::new(ChargeNode::PartitionPart {
                ledger: ledger.clone(),
                index,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Charging — the only way the rest of the crate spends ε.
// ---------------------------------------------------------------------

/// Provenance for a batch of charges, prepared once so hot loops (e.g.
/// per-part noisy counts) do not re-intern operator strings per part.
pub(crate) struct PreparedCharge {
    operator: &'static str,
    meta: ChargeMeta,
}

/// Prepare provenance for one or more charges initiated by `operator`
/// under an optional analysis label.
pub(crate) fn prepare(operator: &'static str, label: Option<Arc<str>>) -> PreparedCharge {
    PreparedCharge {
        operator,
        meta: ChargeMeta::new(operator, label),
    }
}

/// Spend `eps` through `node` — the live counterpart of a
/// `Transition::Charge`. On failure nothing is spent anywhere (multi-input
/// nodes roll back transactionally). When an explain recorder is
/// installed, the per-root deltas are captured atomically with the charge
/// and recorded against the node's static description; on `Err` the trace
/// is discarded, matching the kernel model where a failed `step` yields no
/// deltas.
pub(crate) fn charge_prepared(node: &ChargeNode, eps: f64, prep: &PreparedCharge) -> Result<()> {
    if let Some(rec) = crate::explain::recorder() {
        let mut trace = Vec::new();
        node.charge_traced(eps, &prep.meta, "", &mut Some(&mut trace))?;
        rec.record(prep.operator, &node.describe(), eps, &trace);
        Ok(())
    } else {
        node.charge_with(eps, &prep.meta, "")
    }
}

// ---------------------------------------------------------------------
// Prediction — pure queries answered by compiling snapshots into the
// model and walking them with `model::predict`.
// ---------------------------------------------------------------------

/// Predict the per-root `(path, ε)` deltas a charge of `eps` against the
/// node captured in `tree` would apply, given the budget/ledger values the
/// snapshot recorded. Pure: compiles the snapshot into a
/// [`model::KernelState`] and runs the kernel's predict walk, so static
/// `EXPLAIN` predictions use the same arithmetic as live charges.
pub(crate) fn predict_tree(tree: &crate::explain::ChargeTree, eps: f64) -> Vec<(String, f64)> {
    let mut state = model::KernelState::new();
    let node = compile_tree(tree, &mut state);
    model::predict(&state, node, eps)
        .into_iter()
        .map(|d| (d.path, d.eps))
        .collect()
}

/// Compile one snapshot node into `state`, returning its id. Ledger books
/// are compacted to the single column the snapshot retained (`slot` 0),
/// with the narrated part index preserved separately — a snapshot only
/// knows its own part's spend and the overall max, which is exactly what
/// the forwarding rule needs.
fn compile_tree(
    tree: &crate::explain::ChargeTree,
    state: &mut model::KernelState,
) -> model::NodeId {
    use crate::explain::ChargeTree;
    match tree {
        ChargeTree::Root { spent, total } => {
            let root = state.add_root(model::RootBudget {
                total: *total,
                spent: *spent,
            });
            state.add_node(NodeSpec::Root(root))
        }
        ChargeTree::Scaled { factor, child } => {
            let parent = compile_tree(child, state);
            state.add_node(NodeSpec::Scaled {
                parent,
                factor: *factor,
            })
        }
        ChargeTree::Combined(children) => {
            let parents = children.iter().map(|c| compile_tree(c, state)).collect();
            state.add_node(NodeSpec::Combined(parents))
        }
        ChargeTree::Part {
            index,
            part_spent,
            max_spent,
            child,
            ..
        } => {
            let parent = compile_tree(child, state);
            let ledger = state.add_ledger_book(
                parent,
                LedgerBook {
                    spends: vec![*part_spent],
                    max: *max_spent,
                },
            );
            state.add_node(NodeSpec::Part {
                ledger,
                index: *index,
                slot: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_root_collapses_single_budget() {
        let a = Accountant::new(1.0);
        let node = shared_root_node(&[&a]);
        assert_eq!(node.describe(), "root");
        let b = Accountant::new(2.0);
        let both = shared_root_node(&[&a, &b]);
        assert_eq!(both.describe(), "(in[0]:root+in[1]:root)");
    }

    #[test]
    fn charge_prepared_spends_like_a_direct_walk() {
        let a = Accountant::new(1.0);
        let node = root_node(&a);
        let prep = prepare("noisy_count", None);
        charge_prepared(&node, 0.25, &prep).unwrap();
        assert!((a.spent() - 0.25).abs() < 1e-15);
        assert_eq!(&*a.audit_log()[0].operator, "noisy_count");
    }

    #[test]
    fn partition_nodes_share_one_ledger() {
        let a = Accountant::new(1.0);
        let parts = partition_nodes(&root_node(&a), 2.0, 3);
        assert_eq!(parts.len(), 3);
        let prep = prepare("noisy_count", None);
        for p in &parts {
            charge_prepared(p, 0.1, &prep).unwrap();
        }
        // Max-of-parts: the source owes 0.1 × scale 2, once.
        assert!((a.spent() - 0.2).abs() < 1e-12);
        assert_eq!(parts[2].describe(), "part[2]/scale(x2)/root");
    }

    #[test]
    fn predict_tree_matches_the_live_walk() {
        let a = Accountant::new(1.0);
        let parts = partition_nodes(&root_node(&a), 1.0, 2);
        let prep = prepare("noisy_count", None);
        charge_prepared(&parts[0], 0.3, &prep).unwrap();
        // Part 1 sits below the 0.3 max: a 0.2 charge would forward zero.
        let predicted = predict_tree(&parts[1].snapshot(), 0.2);
        assert_eq!(predicted, vec![("part[1]/scale(x1)/root".to_string(), 0.0)]);
        // Beyond the max only the increase forwards.
        let beyond = predict_tree(&parts[1].snapshot(), 0.5);
        assert_eq!(beyond, vec![("part[1]/scale(x1)/root".to_string(), 0.2)]);
    }
}
