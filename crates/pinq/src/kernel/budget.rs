//! Privacy budget accounting.
//!
//! Each protected dataset is given a total privacy budget ε by its owner.
//! Every aggregation spends a portion of it (scaled by the stability of the
//! transformations between the source and the aggregation); once the budget
//! is exhausted, further queries fail. This is the *sequential composition*
//! rule: analyses with costs c₁ and c₂ have total cost at most c₁ + c₂
//! (paper §7). The complementary *parallel composition* rule for `Partition`
//! lives in the partition ledger (see [`crate::Queryable::partition`]).
//!
//! # Observability & audit
//!
//! The accountant is the natural audit point for the paper's mediated
//! setting (§2, §7): the data owner runs analyses on a researcher's behalf
//! and must be able to justify every ε that left the budget. Each spend is
//! recorded as a provenance-rich [`SpendEvent`] — which operator charged,
//! through which path in the composition tree, under which analysis label,
//! and when — and simultaneously emitted as a structured
//! [`dpnet_obs::ChargeEvent`] to any bound [`dpnet_obs::EventSink`].
//!
//! The in-memory log is a bounded ring buffer ([`Accountant::set_log_capacity`])
//! so long-running owner processes cannot grow without bound; *accounting*
//! is exact regardless of eviction, because cumulative totals and
//! per-operator aggregates ([`Accountant::operator_totals`]) are maintained
//! separately from the log. [`Accountant::export_audit_jsonl`] writes the
//! whole picture — retained spends, exact per-operator totals, and a
//! summary — as owner-side JSONL.

use super::model::RootBudget;
use crate::error::Result;
use dpnet_obs::sink::SinkHandle;
use dpnet_obs::{now_ns, ChargeEvent, Event, EventSink};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Spend-log entries retained by default before the ring buffer starts
/// evicting the oldest (see [`Accountant::set_log_capacity`]).
pub const DEFAULT_LOG_CAPACITY: usize = 8192;

/// One recorded spend against an accountant, for auditability. Data owners
/// reviewing a mediated-analysis session can replay what was charged.
#[derive(Debug, Clone, PartialEq)]
pub struct SpendEvent {
    /// ε charged (after stability scaling). Negative for refunds.
    pub epsilon: f64,
    /// Monotonic sequence number of the charge.
    pub sequence: u64,
    /// Operator that initiated the charge (e.g. `"noisy_count"`).
    pub operator: Arc<str>,
    /// Path through the composition tree from the aggregation to this
    /// accountant, e.g. `"scale(x2)/part[3]/root"`.
    pub path: Arc<str>,
    /// Analysis label of the charging queryable, if one was set.
    pub label: Option<Arc<str>>,
    /// Monotonic timestamp (ns since process clock epoch).
    pub at_ns: u64,
}

/// Exact cumulative spend attributed to one operator name. Maintained
/// independently of the ring-buffer log, so eviction never loses ε.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OperatorTotal {
    /// Net ε attributed to the operator (charges minus refunds).
    pub epsilon: f64,
    /// Number of ledger entries (charges and refunds) attributed.
    pub entries: u64,
}

#[derive(Debug)]
struct AccountantState {
    budget: RootBudget,
    sequence: u64,
    log: VecDeque<SpendEvent>,
    log_capacity: usize,
    evicted: u64,
    per_operator: BTreeMap<Arc<str>, OperatorTotal>,
    per_path: BTreeMap<Arc<str>, OperatorTotal>,
}

impl Default for AccountantState {
    fn default() -> Self {
        AccountantState {
            budget: RootBudget::new(0.0),
            sequence: 0,
            log: VecDeque::new(),
            log_capacity: DEFAULT_LOG_CAPACITY,
            evicted: 0,
            per_operator: BTreeMap::new(),
            per_path: BTreeMap::new(),
        }
    }
}

impl AccountantState {
    /// Record one ledger entry: exact aggregates first, then the bounded log.
    fn record(&mut self, ev: SpendEvent) {
        let agg = self.per_operator.entry(ev.operator.clone()).or_default();
        agg.epsilon += ev.epsilon;
        agg.entries += 1;
        let by_path = self.per_path.entry(ev.path.clone()).or_default();
        by_path.epsilon += ev.epsilon;
        by_path.entries += 1;
        if self.log_capacity == 0 {
            self.evicted += 1;
            return;
        }
        while self.log.len() >= self.log_capacity {
            self.log.pop_front();
            self.evicted += 1;
        }
        self.log.push_back(ev);
    }
}

/// Provenance attached to a charge as it walks the composition tree.
#[derive(Debug, Clone)]
pub(in crate::kernel) struct ChargeMeta {
    pub(in crate::kernel) operator: Arc<str>,
    pub(in crate::kernel) label: Option<Arc<str>>,
}

impl ChargeMeta {
    pub(in crate::kernel) fn new(operator: &str, label: Option<Arc<str>>) -> Self {
        ChargeMeta {
            operator: Arc::from(operator),
            label,
        }
    }
}

fn direct_meta() -> ChargeMeta {
    ChargeMeta {
        operator: Arc::from("direct"),
        label: None,
    }
}

/// The root privacy budget for one protected dataset.
///
/// Thread-safe and cheap to clone (clones share the same budget). All
/// queryables derived from the dataset ultimately charge here.
#[derive(Debug, Clone)]
pub struct Accountant {
    state: Arc<Mutex<AccountantState>>,
    sink: SinkHandle,
}

impl Accountant {
    /// Create an accountant with the given total budget.
    ///
    /// # Panics
    /// Panics if `total` is negative, NaN or infinite; the budget is a
    /// policy decision by the data owner and must be a real number.
    pub fn new(total: f64) -> Self {
        Accountant {
            state: Arc::new(Mutex::new(AccountantState {
                budget: RootBudget::new(total),
                ..AccountantState::default()
            })),
            sink: SinkHandle::new(),
        }
    }

    /// The total budget currently configured (initial grant plus any
    /// later [`Accountant::grant`]s).
    pub fn total(&self) -> f64 {
        self.state.lock().budget.total
    }

    /// Cumulative ε spent so far.
    pub fn spent(&self) -> f64 {
        self.state.lock().budget.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        self.state.lock().budget.remaining()
    }

    /// A copy of the underlying kernel budget value, read under one lock
    /// acquisition — `total` and `spent` taken at the same instant, for
    /// tests and tooling replaying the facade against the pure model.
    pub fn budget_snapshot(&self) -> RootBudget {
        self.state.lock().budget
    }

    /// Enlarge the budget by `extra` ε — a *data-owner* operation, the
    /// basis of the timed-release policies the paper sketches in §7
    /// ("reduce privacy cost with time such that the data is available
    /// longer but the added noise increases with time").
    ///
    /// # Panics
    /// Panics on a negative, NaN or infinite grant.
    pub fn grant(&self, extra: f64) {
        self.state.lock().budget.grant(extra);
    }

    /// Bind (or with `None`, unbind) the sink that receives this
    /// accountant's structured [`ChargeEvent`]s. Shared by every clone of
    /// the accountant and every queryable protected by it. With no sink
    /// bound, events fall back to [`dpnet_obs::sink::set_global_sink`].
    pub fn set_sink(&self, sink: Option<Arc<dyn EventSink>>) {
        self.sink.bind(sink);
    }

    /// The emission handle shared by this accountant's queryables.
    pub(crate) fn sink_handle(&self) -> &SinkHandle {
        &self.sink
    }

    /// Cap the in-memory spend log at `capacity` entries; the oldest are
    /// evicted first. Totals and per-operator aggregates stay exact no
    /// matter how much is evicted. A capacity of 0 retains nothing.
    pub fn set_log_capacity(&self, capacity: usize) {
        let mut st = self.state.lock();
        st.log_capacity = capacity;
        while st.log.len() > capacity {
            st.log.pop_front();
            st.evicted += 1;
        }
    }

    /// Ledger entries evicted from the bounded log so far.
    pub fn evicted_entries(&self) -> u64 {
        self.state.lock().evicted
    }

    /// Snapshot of the spends still retained in the bounded log (oldest
    /// first). For *exact* accounting use [`Accountant::operator_totals`]
    /// and [`Accountant::spent`], which survive eviction.
    pub fn audit_log(&self) -> Vec<SpendEvent> {
        self.state.lock().log.iter().cloned().collect()
    }

    /// Exact net ε per operator name, independent of log eviction. The
    /// values sum to [`Accountant::spent`] (up to float rounding).
    pub fn operator_totals(&self) -> Vec<(Arc<str>, OperatorTotal)> {
        self.state
            .lock()
            .per_operator
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Exact net ε per *charge path* — the composition-tree route each
    /// spend took to reach this accountant (e.g.
    /// `"part[3]/scale(x2)/root"`). Like [`Accountant::operator_totals`]
    /// this is maintained independently of the bounded log, so the values
    /// stay exact under eviction and sum to [`Accountant::spent`] (up to
    /// float rounding). This is the measured side of `EXPLAIN ANALYZE`:
    /// the number a static plan's predicted ε per path must reproduce.
    pub fn path_totals(&self) -> Vec<(Arc<str>, OperatorTotal)> {
        self.state
            .lock()
            .per_path
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Attempt to spend `eps`. Fails without side effects if the budget
    /// would be exceeded.
    pub fn charge(&self, eps: f64) -> Result<()> {
        self.charge_with(eps, &direct_meta(), "root")
    }

    /// Attempt to spend `eps`, recording full provenance. The admission
    /// decision and the spend itself are [`RootBudget::try_charge`] — the
    /// kernel model's arithmetic, verbatim; this shell only adds locking,
    /// the audit ledger and sink emission.
    pub(in crate::kernel) fn charge_with(
        &self,
        eps: f64,
        meta: &ChargeMeta,
        path: &str,
    ) -> Result<()> {
        let ev = {
            let mut st = self.state.lock();
            st.budget.try_charge(eps)?;
            st.sequence += 1;
            let ev = SpendEvent {
                epsilon: eps,
                sequence: st.sequence,
                operator: meta.operator.clone(),
                path: Arc::from(path),
                label: meta.label.clone(),
                at_ns: now_ns(),
            };
            st.record(ev.clone());
            (ev, st.budget.spent)
        };
        // Emit outside the lock; sinks may be arbitrarily slow.
        let (ev, spent_after) = ev;
        self.sink.emit(|| {
            Event::Charge(ChargeEvent {
                operator: ev.operator.clone(),
                path: ev.path.clone(),
                label: ev.label.clone(),
                epsilon: ev.epsilon,
                spent_after,
                sequence: ev.sequence,
                at_ns: ev.at_ns,
            })
        });
        Ok(())
    }

    /// Return `eps` to the budget. Used internally to roll back partially
    /// applied multi-input charges (e.g. a `Join` whose second input's
    /// budget is exhausted). Refunds are also logged, as negative spends.
    #[cfg(test)]
    pub(crate) fn refund(&self, eps: f64) {
        self.refund_with(eps, &direct_meta(), "root");
    }

    /// Return `eps` to the budget, recording full provenance. The clamp
    /// at zero and the applied-delta attribution are
    /// [`RootBudget::refund`] — per-operator totals keep summing exactly
    /// to `spent` even if a refund clamps.
    pub(in crate::kernel) fn refund_with(&self, eps: f64, meta: &ChargeMeta, path: &str) {
        let ev = {
            let mut st = self.state.lock();
            let applied = st.budget.refund(eps);
            st.sequence += 1;
            let ev = SpendEvent {
                epsilon: -applied,
                sequence: st.sequence,
                operator: meta.operator.clone(),
                path: Arc::from(path),
                label: meta.label.clone(),
                at_ns: now_ns(),
            };
            st.record(ev.clone());
            (ev, st.budget.spent)
        };
        let (ev, spent_after) = ev;
        self.sink.emit(|| {
            Event::Charge(ChargeEvent {
                operator: ev.operator.clone(),
                path: ev.path.clone(),
                label: ev.label.clone(),
                epsilon: ev.epsilon,
                spent_after,
                sequence: ev.sequence,
                at_ns: ev.at_ns,
            })
        });
    }

    /// Run `f` as a named analysis phase: measures wall time and the exact
    /// ε this accountant spent inside `f`, and emits a
    /// [`dpnet_obs::PhaseEvent`] when it finishes. Returns `f`'s result.
    pub fn observe_phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let timer = dpnet_obs::SpanTimer::start();
        let spent_before = self.spent();
        let result = f();
        let eps_spent = self.spent() - spent_before;
        self.sink.emit(|| {
            Event::Phase(dpnet_obs::PhaseEvent {
                name: Arc::from(name),
                eps_spent,
                wall_ns: timer.elapsed_ns(),
                at_ns: timer.started_at_ns(),
            })
        });
        result
    }

    /// Write the owner-side audit export as JSONL: one `spend` line per
    /// retained ledger entry, one `operator` line per operator and one
    /// `path` line per charge path with their *exact* net ε
    /// (eviction-proof), and a final `summary` line.
    pub fn export_audit_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        use dpnet_obs::json::JsonObj;
        let (log, totals, paths, spent, total, evicted) = {
            let st = self.state.lock();
            (
                st.log.iter().cloned().collect::<Vec<_>>(),
                st.per_operator
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect::<Vec<_>>(),
                st.per_path
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect::<Vec<_>>(),
                st.budget.spent,
                st.budget.total,
                st.evicted,
            )
        };
        for ev in &log {
            let mut o = JsonObj::new();
            o.field_str("type", "spend")
                .field_str("op", &ev.operator)
                .field_str("path", &ev.path)
                .field_opt_str("label", ev.label.as_deref())
                .field_f64("eps", ev.epsilon)
                .field_u64("seq", ev.sequence)
                .field_u64("at_ns", ev.at_ns);
            writeln!(w, "{}", o.finish())?;
        }
        for (op, t) in &totals {
            let mut o = JsonObj::new();
            o.field_str("type", "operator")
                .field_str("name", op)
                .field_f64("eps", t.epsilon)
                .field_u64("entries", t.entries);
            writeln!(w, "{}", o.finish())?;
        }
        for (path, t) in &paths {
            let mut o = JsonObj::new();
            o.field_str("type", "path")
                .field_str("name", path)
                .field_f64("eps", t.epsilon)
                .field_u64("entries", t.entries);
            writeln!(w, "{}", o.finish())?;
        }
        let mut o = JsonObj::new();
        o.field_str("type", "summary")
            .field_f64("spent", spent)
            .field_f64("total", total)
            .field_f64("remaining", (total - spent).max(0.0))
            .field_u64("retained", log.len() as u64)
            .field_u64("evicted", evicted)
            .field_u64("exported_at", dpnet_obs::unix_time_s());
        writeln!(w, "{}", o.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn charges_accumulate() {
        let a = Accountant::new(1.0);
        a.charge(0.25).unwrap();
        a.charge(0.25).unwrap();
        assert!((a.spent() - 0.5).abs() < 1e-12);
        assert!((a.remaining() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exceeding_budget_fails_without_side_effects() {
        let a = Accountant::new(0.5);
        a.charge(0.4).unwrap();
        let err = a.charge(0.2).unwrap_err();
        match err {
            Error::BudgetExceeded {
                requested,
                available,
            } => {
                assert_eq!(requested, 0.2);
                assert!((available - 0.1).abs() < 1e-12);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The failed charge must not have consumed anything.
        assert!((a.spent() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn spending_exactly_the_budget_is_allowed() {
        let a = Accountant::new(1.0);
        for _ in 0..10 {
            a.charge(0.1).unwrap();
        }
        assert!(a.charge(0.01).is_err());
    }

    #[test]
    fn refund_restores_budget_and_is_logged() {
        let a = Accountant::new(1.0);
        a.charge(0.6).unwrap();
        a.refund(0.6);
        assert_eq!(a.spent(), 0.0);
        let log = a.audit_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].epsilon, 0.6);
        assert_eq!(log[1].epsilon, -0.6);
        assert!(log[1].sequence > log[0].sequence);
    }

    #[test]
    fn clones_share_the_budget() {
        let a = Accountant::new(1.0);
        let b = a.clone();
        a.charge(0.7).unwrap();
        assert!(b.charge(0.7).is_err());
        b.charge(0.3).unwrap();
        assert!((a.spent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_rejects_everything() {
        let a = Accountant::new(0.0);
        assert!(a.charge(1e-6).is_err());
        assert_eq!(a.remaining(), 0.0);
    }

    #[test]
    fn grants_expand_the_budget() {
        let a = Accountant::new(0.5);
        a.charge(0.5).unwrap();
        assert!(a.charge(0.1).is_err());
        a.grant(0.3);
        assert_eq!(a.total(), 0.8);
        a.charge(0.3).unwrap();
        assert!(a.charge(0.01).is_err());
    }

    #[test]
    #[should_panic(expected = "grant must be finite")]
    fn negative_grants_are_rejected() {
        Accountant::new(1.0).grant(-0.5);
    }

    #[test]
    fn concurrent_charges_never_oversubscribe() {
        let a = Accountant::new(10.0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let a = a.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _ = a.charge(0.01);
                    }
                });
            }
        });
        assert!(a.spent() <= a.total() + 1e-6);
    }

    #[test]
    fn log_is_bounded_but_accounting_is_exact() {
        let a = Accountant::new(1000.0);
        a.set_log_capacity(10);
        for _ in 0..100 {
            a.charge(0.5).unwrap();
        }
        let log = a.audit_log();
        assert_eq!(log.len(), 10);
        assert_eq!(a.evicted_entries(), 90);
        // The retained entries are the newest.
        assert_eq!(log.last().unwrap().sequence, 100);
        assert_eq!(log.first().unwrap().sequence, 91);
        // Eviction loses log lines, never ε.
        assert!((a.spent() - 50.0).abs() < 1e-9);
        let per_op: f64 = a.operator_totals().iter().map(|(_, t)| t.epsilon).sum();
        assert!((per_op - a.spent()).abs() < 1e-9);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let a = Accountant::new(10.0);
        for _ in 0..6 {
            a.charge(1.0).unwrap();
        }
        a.set_log_capacity(2);
        assert_eq!(a.audit_log().len(), 2);
        assert_eq!(a.evicted_entries(), 4);
        a.set_log_capacity(0);
        a.charge(1.0).unwrap();
        assert!(a.audit_log().is_empty());
        assert!((a.spent() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn path_totals_are_exact_under_eviction_and_refunds() {
        let a = Accountant::new(1000.0);
        a.set_log_capacity(4);
        let meta = ChargeMeta::new("noisy_count", None);
        for _ in 0..50 {
            a.charge_with(0.5, &meta, "part[0]/root").unwrap();
        }
        for _ in 0..50 {
            a.charge_with(0.25, &meta, "scale(x2)/root").unwrap();
        }
        a.refund_with(0.25, &meta, "scale(x2)/root");
        let paths: BTreeMap<_, _> = a.path_totals().into_iter().collect();
        assert_eq!(paths.len(), 2);
        let p0 = paths[&Arc::<str>::from("part[0]/root")];
        assert!((p0.epsilon - 25.0).abs() < 1e-9);
        assert_eq!(p0.entries, 50);
        let p1 = paths[&Arc::<str>::from("scale(x2)/root")];
        assert!((p1.epsilon - 12.25).abs() < 1e-9);
        assert_eq!(p1.entries, 51);
        // Eviction lost log lines, never per-path ε.
        assert!(a.evicted_entries() > 0);
        let sum: f64 = paths.values().map(|t| t.epsilon).sum();
        assert!((sum - a.spent()).abs() < 1e-9);
    }

    #[test]
    fn audit_export_carries_path_lines() {
        let a = Accountant::new(4.0);
        let meta = ChargeMeta::new("noisy_sum", None);
        a.charge_with(1.0, &meta, "scale(x4)/root").unwrap();
        let mut buf = Vec::new();
        a.export_audit_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let path_line = text
            .lines()
            .map(|l| dpnet_obs::json::parse_flat_object(l).expect("parseable"))
            .find(|o| o["type"].as_str() == Some("path"))
            .expect("a path line");
        assert_eq!(path_line["name"].as_str(), Some("scale(x4)/root"));
        assert_eq!(path_line["eps"].as_f64(), Some(1.0));
    }

    #[test]
    fn operator_totals_sum_to_spent_with_refunds() {
        let a = Accountant::new(10.0);
        a.charge(2.0).unwrap();
        a.refund(0.5);
        a.charge(1.0).unwrap();
        let per_op: f64 = a.operator_totals().iter().map(|(_, t)| t.epsilon).sum();
        assert!((per_op - a.spent()).abs() < 1e-12);
        assert!((a.spent() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn charge_events_reach_the_accountant_sink() {
        let sink = Arc::new(dpnet_obs::MemorySink::new());
        let a = Accountant::new(5.0);
        a.set_sink(Some(sink.clone()));
        a.charge(1.5).unwrap();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            dpnet_obs::Event::Charge(c) => {
                assert_eq!(&*c.operator, "direct");
                assert_eq!(&*c.path, "root");
                assert_eq!(c.epsilon, 1.5);
                assert!((c.spent_after - 1.5).abs() < 1e-12);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn audit_export_is_parseable_and_exact() {
        let a = Accountant::new(4.0);
        a.charge(1.0).unwrap();
        a.charge(0.5).unwrap();
        let mut buf = Vec::new();
        a.export_audit_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut operator_eps = 0.0;
        let mut summary_spent = None;
        for line in text.lines() {
            let obj = dpnet_obs::json::parse_flat_object(line)
                .unwrap_or_else(|| panic!("unparseable line {line}"));
            match obj["type"].as_str().unwrap() {
                "operator" => operator_eps += obj["eps"].as_f64().unwrap(),
                "summary" => summary_spent = obj["spent"].as_f64(),
                _ => {}
            }
        }
        let summary_spent = summary_spent.expect("summary line present");
        assert!((summary_spent - 1.5).abs() < 1e-12);
        assert!((operator_eps - summary_spent).abs() < 1e-9);
    }
}
