//! Parallel composition: the `Partition` ledger.
//!
//! `Partition` splits one protected dataset into disjoint parts keyed by an
//! arbitrary (data-independent) key set. Because a single record lands in at
//! most one part, analyses of *different* parts do not compound: the privacy
//! cost to the source is the **maximum** of the costs to the parts, not their
//! sum (paper §2.2, Table 1).
//!
//! The ledger tracks each part's cumulative spend. When a part's spend grows,
//! only the increase of the maximum (if any) is forwarded to the source. This
//! lets an analyst, say, partition packets by destination port and analyze
//! every port at cost `ε` total, rather than `ε × #ports` — the property the
//! paper's `cdf2` estimator and frequent-string search rely on.

use super::budget::ChargeMeta;
use super::charge::ChargeNode;
use super::model::LedgerBook;
use crate::error::Result;
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared accounting state for the parts of one `Partition` operation: a
/// kernel [`LedgerBook`] (per-part spends plus the incrementally
/// maintained maximum — charges stay O(1) because only the incremented
/// part can raise the max; with 2^k-way fan-outs the old scan-per-charge
/// made the worm search quadratic in the part count) behind one lock, so
/// the forwarding decision and the book update are atomic under
/// concurrent part charges.
#[derive(Debug)]
pub(crate) struct PartitionLedger {
    parent: Arc<ChargeNode>,
    book: Mutex<LedgerBook>,
}

impl PartitionLedger {
    /// Create a ledger with `parts` children charging through `parent`.
    pub(in crate::kernel) fn new(parent: Arc<ChargeNode>, parts: usize) -> Self {
        PartitionLedger {
            parent,
            book: Mutex::new(LedgerBook::new(parts)),
        }
    }

    /// The node this ledger forwards max-increases to (for static charge
    /// path rendering — see [`ChargeNode::describe`]).
    pub(in crate::kernel) fn parent(&self) -> &Arc<ChargeNode> {
        &self.parent
    }

    /// Spend `eps` on behalf of part `index`; forwards only the increase of
    /// the maximum to the parent, rolling back on parent failure.
    #[cfg(test)]
    pub(crate) fn charge_child(&self, index: usize, eps: f64) -> Result<()> {
        self.charge_child_traced(index, eps, &ChargeMeta::new("direct", None), "", &mut None)
    }

    /// [`PartitionLedger::charge_child`] with provenance threaded through
    /// (the forwarded max-increase carries the same operator/label/path)
    /// that also records per-root
    /// deltas into `trace` (see [`ChargeNode::charge_traced`]). The
    /// forwarded delta is computed and traced while the ledger lock is
    /// held, so the trace stays exact under concurrent part charges. A
    /// charge absorbed below the current max traces a zero delta for every
    /// root it would have reached, keeping per-path call counts honest.
    pub(in crate::kernel) fn charge_child_traced(
        &self,
        index: usize,
        eps: f64,
        meta: &ChargeMeta,
        path: &str,
        trace: &mut Option<&mut Vec<(String, f64)>>,
    ) -> Result<()> {
        let mut book = self.book.lock();
        // The forwarding decision is the kernel model's rule, verbatim;
        // the book is committed only after the upstream charge succeeds,
        // so a parent failure leaves the ledger untouched.
        let delta = book.forwardable(index, eps);
        if delta > 0.0 {
            self.parent.charge_traced(delta, meta, path, trace)?;
        } else if let Some(t) = trace.as_mut() {
            self.parent.predict_into(0.0, path, t);
        }
        book.commit(index, eps);
        Ok(())
    }

    /// The delta a `charge_child(index, eps)` would forward to the parent
    /// right now, given current part spends. Side-effect-free.
    pub(in crate::kernel) fn predict_child(&self, index: usize, eps: f64) -> f64 {
        self.book.lock().forwardable(index, eps)
    }

    /// Undo a previous `charge_child(index, eps)`, refunding the parent for
    /// any resulting decrease of the maximum.
    #[cfg(test)]
    pub(crate) fn refund_child(&self, index: usize, eps: f64) {
        self.refund_child_with(index, eps, &ChargeMeta::new("direct", None), "");
    }

    /// [`PartitionLedger::refund_child`] with provenance threaded through.
    /// The clamp and the max-drop rescan are [`LedgerBook::refund`]; only
    /// a decrease of the maximum is refunded upstream, under the lock.
    pub(in crate::kernel) fn refund_child_with(
        &self,
        index: usize,
        eps: f64,
        meta: &ChargeMeta,
        path: &str,
    ) {
        let mut book = self.book.lock();
        let upstream = book.refund(index, eps);
        if upstream > 0.0 {
            self.parent.refund_with(upstream, meta, path);
        }
    }

    /// Cumulative spend of each part (explain snapshots / introspection).
    pub(in crate::kernel) fn spends(&self) -> Vec<f64> {
        self.book.lock().spends.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Accountant;

    fn ledger(budget: f64, parts: usize) -> (Accountant, PartitionLedger) {
        let acct = Accountant::new(budget);
        let parent = Arc::new(ChargeNode::Root(acct.clone()));
        (acct, PartitionLedger::new(parent, parts))
    }

    #[test]
    fn parallel_parts_cost_only_the_max() {
        let (acct, ledger) = ledger(1.0, 4);
        for i in 0..4 {
            ledger.charge_child(i, 0.3).unwrap();
        }
        // Four parts each spent 0.3, but the source is charged max = 0.3.
        assert!((acct.spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn repeated_spends_on_one_part_accumulate() {
        let (acct, ledger) = ledger(1.0, 2);
        ledger.charge_child(0, 0.2).unwrap();
        ledger.charge_child(0, 0.2).unwrap();
        assert!((acct.spent() - 0.4).abs() < 1e-12);
        // The other part can now spend up to 0.4 for free.
        ledger.charge_child(1, 0.4).unwrap();
        assert!((acct.spent() - 0.4).abs() < 1e-12);
        // Going beyond the current max charges the difference.
        ledger.charge_child(1, 0.1).unwrap();
        assert!((acct.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parent_failure_rolls_back_child_spend() {
        let (acct, ledger) = ledger(0.25, 2);
        ledger.charge_child(0, 0.2).unwrap();
        // This would raise the max to 0.5, exceeding the 0.25 budget.
        assert!(ledger.charge_child(1, 0.5).is_err());
        assert_eq!(ledger.spends(), vec![0.2, 0.0]);
        assert!((acct.spent() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn refund_reduces_parent_only_when_max_drops() {
        let (acct, ledger) = ledger(1.0, 2);
        ledger.charge_child(0, 0.4).unwrap();
        ledger.charge_child(1, 0.3).unwrap();
        assert!((acct.spent() - 0.4).abs() < 1e-12);
        // Refunding the non-max part changes nothing upstream.
        ledger.refund_child(1, 0.3);
        assert!((acct.spent() - 0.4).abs() < 1e-12);
        // Refunding the max part drops the parent charge to the new max (0).
        ledger.refund_child(0, 0.4);
        assert!(acct.spent().abs() < 1e-12);
    }

    #[test]
    fn nested_partitions_compose() {
        // Partition inside a partition: inner ledger charges through an
        // outer PartitionPart node.
        let acct = Accountant::new(1.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let outer = Arc::new(PartitionLedger::new(root, 2));
        let outer_part0 = Arc::new(ChargeNode::PartitionPart {
            ledger: outer.clone(),
            index: 0,
        });
        let inner = PartitionLedger::new(outer_part0, 3);
        for i in 0..3 {
            inner.charge_child(i, 0.5).unwrap();
        }
        // Inner parts are parallel (max 0.5), outer parts parallel again.
        assert!((acct.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predict_child_never_mutates_and_matches_forwarding() {
        let (acct, ledger) = ledger(1.0, 2);
        ledger.charge_child(0, 0.4).unwrap();
        // Under the max: forwarded delta would be zero.
        assert_eq!(ledger.predict_child(1, 0.3), 0.0);
        // Beyond the max: only the increase is forwarded.
        assert!((ledger.predict_child(1, 0.5) - 0.1).abs() < 1e-12);
        // Prediction left everything untouched.
        assert_eq!(ledger.spends(), vec![0.4, 0.0]);
        assert!((acct.spent() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn concurrent_traced_charges_sum_to_the_accountant_spend() {
        let (acct, ledger) = ledger(100.0, 8);
        let ledger = Arc::new(ledger);
        let meta = ChargeMeta::new("noisy_count", None);
        let traced_total: f64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let ledger = ledger.clone();
                    let meta = meta.clone();
                    s.spawn(move || {
                        let mut local = Vec::new();
                        for _ in 0..100 {
                            ledger
                                .charge_child_traced(i, 0.01, &meta, "part", &mut Some(&mut local))
                                .unwrap();
                        }
                        local.iter().map(|(_, d)| d).sum::<f64>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Deltas were captured under the ledger lock, so they account for
        // exactly what reached the source — no race can skew the split.
        assert!((traced_total - acct.spent()).abs() < 1e-9);
        assert!((acct.spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_child_charges_are_consistent() {
        let (acct, ledger) = ledger(100.0, 8);
        let ledger = Arc::new(ledger);
        std::thread::scope(|s| {
            for i in 0..8 {
                let ledger = ledger.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        ledger.charge_child(i, 0.01).unwrap();
                    }
                });
            }
        });
        // Every part spent exactly 1.0, so the source owes exactly 1.0.
        assert!((acct.spent() - 1.0).abs() < 1e-9);
    }
}
