//! The analyst-facing protected dataset handle.
//!
//! A [`Queryable<T>`] wraps records the analyst must never see directly.
//! *Transformations* (`filter`, `map`, `group_by`, `join`, `partition`, …)
//! produce new queryables and track how they amplify the influence any one
//! source record can have — the *stability* multiplier. *Aggregations*
//! (`noisy_count`, `noisy_sum`, `noisy_average`, `noisy_median`) release a
//! randomized number, charging `stability × ε` against the source budget and
//! perturbing the answer with noise calibrated to `1/ε`.
//!
//! The worked example of the paper's §2.3 — count distinct hosts sending
//! more than 1024 bytes to port 80 — looks like this:
//!
//! ```
//! use pinq::{Accountant, NoiseSource, Queryable};
//!
//! #[derive(Clone)]
//! struct Packet { src_ip: u32, dst_port: u16, len: u32 }
//! # let trace = vec![Packet { src_ip: 1, dst_port: 80, len: 2000 }];
//!
//! let budget = Accountant::new(1.0);
//! let noise = NoiseSource::seeded(42);
//! let packets = Queryable::new(trace, &budget, &noise);
//!
//! let count = packets
//!     .filter(|p| p.dst_port == 80)
//!     .group_by(|p| p.src_ip)
//!     .filter(|g| g.items.iter().map(|p| p.len).sum::<u32>() > 1024)
//!     .noisy_count(0.1)
//!     .unwrap();
//! // `group_by` doubles sensitivity, so ε = 0.2 was deducted:
//! assert!((budget.spent() - 0.2).abs() < 1e-12);
//! # let _ = count;
//! ```

use crate::aggregates;
use crate::budget::Accountant;
use crate::error::{check_epsilon, Error, Result};
use crate::exec::ExecCtx;
use crate::explain::{ExplainTree, OpNode};
use crate::kernel::{self, ChargeNode};
use crate::plan::{LazyPlan, Runner, View};
use crate::rng::NoiseSource;
use crate::shard::Shards;
use crate::types::{Group, JoinGroup};
use dpnet_obs::sink::SinkHandle;
use dpnet_obs::span;
use dpnet_obs::{
    now_ns, AggregateEvent, Event, ExecEvent, Outcome, PlanEvent, SpanTimer, TransformEvent,
};
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;
use std::sync::Arc;

/// The records behind a queryable: a materialized (sharded) buffer, or a
/// lazy fused plan that will produce one when forced.
enum Data<T> {
    Ready(Shards<T>),
    Lazy(Arc<LazyPlan<T>>),
}

/// Where an aggregation kernel reads records from: the sharded buffer when
/// one exists, or the unforced fused chain streamed straight off the
/// source (no output buffer ever exists).
///
/// `walk` visits a *global index range* of the stream's domain — record
/// positions for a buffer, source positions for a chain — so the fixed
/// chunk decomposition stays worker-count independent either way.
enum StreamSource<T> {
    Buf(Shards<T>),
    Chain(Runner<T>),
}

impl<T> StreamSource<T> {
    fn walk(&self, range: Range<usize>, f: &mut dyn FnMut(&T)) {
        match self {
            StreamSource::Buf(s) => s.for_range(range, f),
            StreamSource::Chain(run) => run(range, &mut |t| f(&t)),
        }
    }
}

impl<T> Clone for Data<T> {
    fn clone(&self) -> Self {
        match self {
            Data::Ready(a) => Data::Ready(a.clone()),
            Data::Lazy(p) => Data::Lazy(p.clone()),
        }
    }
}

/// Classify an aggregation result for event reporting: a budget refusal is
/// `Denied`, any other error is an invalid request; both cost nothing.
fn outcome_of<R>(r: &Result<R>) -> Outcome {
    match r {
        Ok(_) => Outcome::Ok,
        Err(Error::BudgetExceeded { .. }) => Outcome::Denied,
        Err(_) => Outcome::Invalid,
    }
}

/// An opaque, privacy-protected dataset.
///
/// Cloning is cheap (the records are shared); clones charge the same budget.
///
/// Record-shaping operators (`filter`, `map`, `select_many`) are **lazy**:
/// they fuse into a single per-record pass that runs — once, memoized —
/// when an aggregation or a key-shuffling barrier (`group_by`, `join`,
/// `partition`, …) forces it, or on an explicit
/// [`Queryable::collect_protected`]. Stability and budget bookkeeping
/// happen at operator *declaration*, so laziness never changes what is
/// charged or released. The [`ExecCtx`] bound with
/// [`Queryable::with_ctx`] decides where forced plans and chunked
/// aggregation kernels run.
pub struct Queryable<T> {
    data: Data<T>,
    charge: Arc<ChargeNode>,
    noise: NoiseSource,
    stability: f64,
    /// Analyst-facing name for this pipeline stage, carried into ledger
    /// entries and events. Set with [`Queryable::with_label`].
    label: Option<Arc<str>>,
    /// Emission point for structured events; shared with the accountant the
    /// dataset was created under.
    sink: SinkHandle,
    /// Execution context: where plans materialize and chunked kernels run.
    ctx: ExecCtx,
    /// Operator lineage back to the source(s) — pure plan metadata for
    /// [`Queryable::explain`]; never holds data.
    lineage: Arc<OpNode>,
}

impl<T> Clone for Queryable<T> {
    fn clone(&self) -> Self {
        Queryable {
            data: self.data.clone(),
            charge: self.charge.clone(),
            noise: self.noise.clone(),
            stability: self.stability,
            label: self.label.clone(),
            sink: self.sink.clone(),
            ctx: self.ctx.clone(),
            lineage: self.lineage.clone(),
        }
    }
}

impl<T> std::fmt::Debug for Queryable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately does not print record contents or even the record
        // count: both are protected.
        f.debug_struct("Queryable")
            .field("stability", &self.stability)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl<T> Queryable<T> {
    /// Wrap raw records under the protection of `budget`. This is the data
    /// owner's entry point; everything downstream sees only the handle.
    pub fn new(records: Vec<T>, budget: &Accountant, noise: &NoiseSource) -> Self {
        Self::from_sharded(Shards::from_vec(records), budget, noise)
    }

    /// Wrap records already chunked into shards (e.g. emitted shard-by-shard
    /// by a trace generator) without copying them into one flat buffer. The
    /// flat record sequence is the concatenation of `shards` in order;
    /// privacy semantics are identical to [`Queryable::new`] over that
    /// flattened vector — the shard layout is a physical detail no released
    /// value depends on. Empty shards are allowed and read as zero records.
    pub fn from_shards(shards: Vec<Vec<T>>, budget: &Accountant, noise: &NoiseSource) -> Self {
        Self::from_sharded(Shards::from_vecs(shards), budget, noise)
    }

    /// Like [`Queryable::from_shards`], but sharing already-`Arc`ed shards:
    /// wrapping costs one reference bump per shard and zero record copies,
    /// so a cached dataset can back many protected views (each with its own
    /// budget) without duplicating the trace in memory.
    pub fn from_shared_shards(
        shards: Vec<Arc<Vec<T>>>,
        budget: &Accountant,
        noise: &NoiseSource,
    ) -> Self {
        Self::from_sharded(Shards::from_arcs(shards), budget, noise)
    }

    fn from_sharded(records: Shards<T>, budget: &Accountant, noise: &NoiseSource) -> Self {
        Queryable {
            data: Data::Ready(records),
            charge: kernel::root_node(budget),
            noise: noise.clone(),
            stability: 1.0,
            label: None,
            sink: budget.sink_handle().clone(),
            ctx: ExecCtx::Sequential,
            lineage: OpNode::source(None),
        }
    }

    /// Wrap shared records under *several* budgets at once: every
    /// aggregation must fit in, and is charged against, all of them.
    ///
    /// This is the owner-side primitive behind multi-analyst policies
    /// (paper §7): give each analyst session a view charging both the
    /// analyst's personal cap and the dataset-wide budget, and no coalition
    /// of analysts can learn more than the global budget allows.
    ///
    /// # Panics
    /// Panics if `budgets` is empty — an unbudgeted dataset would be
    /// unprotected.
    pub fn new_shared(records: Arc<Vec<T>>, budgets: &[&Accountant], noise: &NoiseSource) -> Self {
        Self::new_shared_shards(vec![records], budgets, noise)
    }

    /// [`Queryable::new_shared`] over pre-chunked shared shards: the
    /// serving path, where one loaded trace backs many concurrent analyst
    /// sessions and every session must charge several budgets at once.
    /// Chunks are shared zero-copy across sessions; flat record order is
    /// the shard concatenation, so releases are identical to a flat
    /// source over the same records.
    pub fn new_shared_shards(
        shards: Vec<Arc<Vec<T>>>,
        budgets: &[&Accountant],
        noise: &NoiseSource,
    ) -> Self {
        assert!(!budgets.is_empty(), "at least one budget is required");
        let charge = kernel::shared_root_node(budgets);
        Queryable {
            data: Data::Ready(Shards::from_arcs(shards)),
            charge,
            noise: noise.clone(),
            stability: 1.0,
            label: None,
            // Events route through the first budget's sink: multi-budget
            // views belong to one owner session, and that owner binds the
            // sink on the budget they hand out first.
            sink: budgets[0].sink_handle().clone(),
            ctx: ExecCtx::Sequential,
            lineage: OpNode::source(Some(format!("{} budgets", budgets.len()))),
        }
    }

    fn derive<U>(&self, op: &'static str, records: Vec<U>, stability: f64) -> Queryable<U> {
        Queryable {
            data: Data::Ready(Shards::from_vec(records)),
            charge: self.charge.clone(),
            noise: self.noise.clone(),
            stability,
            label: self.label.clone(),
            sink: self.sink.clone(),
            ctx: self.ctx.clone(),
            lineage: OpNode::derived(op, stability, false, None, self.lineage.clone()),
        }
    }

    fn derive_lazy<U>(
        &self,
        op: &'static str,
        detail: Option<String>,
        plan: LazyPlan<U>,
        stability: f64,
    ) -> Queryable<U> {
        Queryable {
            data: Data::Lazy(Arc::new(plan)),
            charge: self.charge.clone(),
            noise: self.noise.clone(),
            stability,
            label: self.label.clone(),
            sink: self.sink.clone(),
            ctx: self.ctx.clone(),
            lineage: OpNode::derived(op, stability, true, detail, self.lineage.clone()),
        }
    }

    /// The source buffer or fused chain a downstream transform composes
    /// against. A memoized plan is read as a buffer, so chains declared
    /// after a force do not re-run the upstream stages.
    fn view(&self) -> View<T> {
        match &self.data {
            Data::Ready(a) => View::Source(a.clone()),
            Data::Lazy(p) => p.view(),
        }
    }

    /// Force materialization (memoized) and return the shared buffer.
    ///
    /// Emits one [`PlanEvent`] per *actual* materialization; reads of the
    /// memo are free and silent. Under [`ExecCtx::Pool`] each fixed-size
    /// source chunk's output becomes one shard of the buffer (see
    /// [`LazyPlan::force_pool`]) — no concatenation barrier.
    fn records(&self) -> Shards<T>
    where
        T: Send + Sync,
    {
        match &self.data {
            Data::Ready(a) => a.clone(),
            Data::Lazy(plan) => {
                let prof = span::enter_with("plan/materialize", || self.ctx.mode().to_string());
                let t = SpanTimer::start();
                let mut fresh = false;
                let out = match &self.ctx {
                    ExecCtx::Sequential => plan.force_sequential(&mut fresh),
                    ExecCtx::Pool(pool) => plan.force_pool(pool, &mut fresh),
                };
                if fresh {
                    prof.set_records(out.len() as u64);
                    self.emit_plan(plan.fused(), t.elapsed_ns(), plan.source_len(), out.len());
                }
                out
            }
        }
    }

    /// The record stream an aggregation kernel should read, plus the length
    /// of the global index domain its chunk decomposition ranges over:
    /// record count for a buffer, *source* record count for an unforced
    /// chain (the fused stages run inside the kernel's pass — fused
    /// aggregation, no output buffer is ever allocated).
    fn stream(&self) -> (StreamSource<T>, usize) {
        match self.view() {
            View::Source(s) => {
                let len = s.len();
                (StreamSource::Buf(s), len)
            }
            View::Chain(run, len, _) => (StreamSource::Chain(run), len),
        }
    }

    /// Number of records the queryable holds, counted by streaming the
    /// fused chain when nothing has materialized — the fused form of the
    /// count aggregations. Deterministic in both modes (chunk counts are
    /// integers, summed in chunk order).
    fn stream_count(&self, kernel: &'static str, t: &SpanTimer) -> usize
    where
        T: Send + Sync,
    {
        match self.stream() {
            (StreamSource::Buf(s), _) => s.len(),
            (StreamSource::Chain(run), domain) => match &self.ctx {
                ExecCtx::Sequential => {
                    let mut n = 0usize;
                    run(0..domain, &mut |_| n += 1);
                    self.emit_exec(kernel, 1, 1, t.elapsed_ns());
                    n
                }
                ExecCtx::Pool(pool) => {
                    let ranges = pool.chunks(domain);
                    let counts: Vec<usize> = pool.run(&ranges, |_, r| {
                        let mut n = 0usize;
                        run(r.clone(), &mut |_| n += 1);
                        n
                    });
                    self.emit_exec(kernel, pool.workers(), ranges.len(), t.elapsed_ns());
                    counts.into_iter().sum()
                }
            },
        }
    }

    /// A view of the same dataset whose noise draws come from a derived
    /// substream of the shared source (see [`NoiseSource::substream`]).
    /// Used by parallel drivers to give each concurrent task its own
    /// deterministic stream; must be called on the coordinating thread in
    /// task order.
    pub(crate) fn with_substream(&self) -> Self {
        Queryable {
            data: self.data.clone(),
            charge: self.charge.clone(),
            noise: self.noise.substream(),
            stability: self.stability,
            label: self.label.clone(),
            sink: self.sink.clone(),
            ctx: self.ctx.clone(),
            lineage: self.lineage.clone(),
        }
    }

    /// Current sensitivity multiplier relative to the source dataset.
    pub fn stability(&self) -> f64 {
        self.stability
    }

    /// Bind an execution context: where this queryable's lazy plans
    /// materialize and where chunked aggregation kernels run. The context
    /// is inherited by every derived queryable.
    ///
    /// Privacy accounting is identical in both modes. Released values are
    /// identical too, except that chunked floating-point reductions
    /// (`noisy_sum*`) under [`ExecCtx::Pool`] may differ from the flat
    /// sequential sum in the last ulp — while staying bit-identical across
    /// *any* pool worker count (see [`ExecCtx`]).
    pub fn with_ctx(mut self, ctx: ExecCtx) -> Self {
        self.ctx = ctx;
        self
    }

    /// The execution context bound with [`Queryable::with_ctx`].
    pub fn ctx(&self) -> &ExecCtx {
        &self.ctx
    }

    /// Force the pending fused plan (if any) and return a handle over the
    /// materialized buffer. Stability, charges and the noise stream are
    /// untouched — this only pins *when* the record buffer exists, e.g. to
    /// pay a pipeline's cost once before aggregating in a loop.
    pub fn collect_protected(&self) -> Queryable<T>
    where
        T: Send + Sync,
    {
        Queryable {
            data: Data::Ready(self.records()),
            charge: self.charge.clone(),
            noise: self.noise.clone(),
            stability: self.stability,
            label: self.label.clone(),
            sink: self.sink.clone(),
            ctx: self.ctx.clone(),
            lineage: self.lineage.clone(),
        }
    }

    /// Name this pipeline stage. The label rides along into every ledger
    /// entry and structured event produced downstream — it is how an owner
    /// reading an audit export maps ε spends back to the analysis that
    /// caused them. Labels are analyst-chosen metadata, never data.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = Some(Arc::from(label));
        self
    }

    /// The label set with [`Queryable::with_label`], if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Charge the budget for an aggregation at analyst accuracy `eps`,
    /// attributing the spend to `operator` in the ledger.
    ///
    /// Validation happens here; the spend itself goes through the sealed
    /// kernel entry point ([`kernel::charge_prepared`]), which also folds
    /// the per-root deltas into an installed
    /// [`ExplainRecorder`](crate::ExplainRecorder), captured atomically
    /// with the charge.
    fn pay(&self, eps: f64, operator: &'static str) -> Result<()> {
        check_epsilon(eps)?;
        if !(self.stability.is_finite() && self.stability > 0.0) {
            return Err(Error::InvalidStability(self.stability));
        }
        let prep = kernel::prepare(operator, self.label.clone());
        kernel::charge_prepared(&self.charge, self.stability * eps, &prep)
    }

    /// Snapshot this pipeline into a side-effect-free
    /// [`ExplainTree`]: operator lineage (with fusion boundaries and the
    /// stability multiplier at each edge), the structured charge DAG, and
    /// the arithmetic to predict what any pending aggregation would cost.
    /// Nothing is charged and nothing materializes.
    pub fn explain(&self) -> ExplainTree {
        ExplainTree {
            label: self.label.as_deref().map(str::to_string),
            stability: self.stability,
            pending_fused: match &self.data {
                Data::Ready(_) => 0,
                Data::Lazy(p) => match p.view() {
                    // A memoized plan reads as a buffer: nothing pending.
                    View::Source(_) => 0,
                    View::Chain(_, _, fused) => fused,
                },
            },
            materialized: matches!(self.view(), View::Source(_)),
            lineage: self.lineage.clone(),
            charge: self.charge.snapshot(),
        }
    }

    /// Emit a [`TransformEvent`] for a just-derived queryable.
    fn emit_transform(
        &self,
        operator: &'static str,
        stability_out: f64,
        wall_ns: u64,
        output_records: usize,
    ) {
        // Quiet the unused warning when `trusted-owner` is off: the count
        // deliberately does not leave this function in that configuration.
        let _ = output_records;
        self.sink.emit(|| {
            Event::Transform(TransformEvent {
                operator,
                label: self.label.clone(),
                stability_in: self.stability,
                stability_out,
                wall_ns,
                at_ns: now_ns(),
                #[cfg(feature = "trusted-owner")]
                output_records: output_records as u64,
            })
        });
    }

    /// Emit an [`AggregateEvent`] describing a finished aggregation.
    /// `input_records` only leaves this function under `trusted-owner`.
    #[allow(clippy::too_many_arguments)]
    fn emit_aggregate(
        &self,
        operator: &'static str,
        mechanism: &'static str,
        eps: f64,
        released: Option<f64>,
        outcome: Outcome,
        timer: SpanTimer,
        input_records: usize,
    ) {
        let _ = input_records;
        self.sink.emit(|| {
            Event::Aggregate(AggregateEvent {
                operator,
                mechanism,
                label: self.label.clone(),
                stability: self.stability,
                eps_requested: eps,
                eps_charged: if outcome == Outcome::Ok {
                    self.stability * eps
                } else {
                    0.0
                },
                outcome,
                released,
                wall_ns: timer.elapsed_ns(),
                at_ns: timer.started_at_ns(),
                #[cfg(feature = "trusted-owner")]
                input_records: input_records as u64,
            })
        });
    }

    /// Emit a [`PlanEvent`] describing one actual plan materialization.
    /// The record counts only leave this function under `trusted-owner`.
    fn emit_plan(&self, fused: usize, wall_ns: u64, source_records: usize, output_records: usize) {
        let _ = (source_records, output_records);
        // Process-wide ordinal: explain-analyze counts materializations per
        // run by diffing, so monotonicity is all that matters here.
        static MATERIALIZATIONS: std::sync::atomic::AtomicU64 =
            std::sync::atomic::AtomicU64::new(1);
        self.sink.emit(|| {
            Event::Plan(PlanEvent {
                materialization: MATERIALIZATIONS
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                fused_stages: fused as u64,
                mode: self.ctx.mode(),
                workers: self.ctx.workers() as u64,
                wall_ns,
                at_ns: now_ns(),
                #[cfg(feature = "trusted-owner")]
                source_records: source_records as u64,
                #[cfg(feature = "trusted-owner")]
                output_records: output_records as u64,
            })
        });
    }

    /// Emit an [`ExecEvent`] describing one finished parallel-kernel run.
    /// `tasks` (the chunk count) is derived from the record count, so it
    /// only leaves this function under `trusted-owner`.
    pub(crate) fn emit_exec(
        &self,
        kernel: &'static str,
        workers: usize,
        tasks: usize,
        wall_ns: u64,
    ) {
        let _ = tasks;
        self.sink.emit(|| {
            Event::Exec(ExecEvent {
                kernel,
                workers: workers as u64,
                wall_ns,
                at_ns: now_ns(),
                #[cfg(feature = "trusted-owner")]
                tasks: tasks as u64,
            })
        });
    }

    /// Open a profiler span for an aggregation barrier, tagged with the
    /// static charge path the spend would narrate (e.g.
    /// `"part[3]/scale(x2)/root"`). Pure privacy metadata; when profiling
    /// is disabled this is one relaxed atomic load and nothing formats.
    fn agg_span(&self, name: &'static str) -> span::SpanGuard {
        span::enter_agg_with(name, || self.charge.describe())
    }

    // ------------------------------------------------------------------
    // Transformations
    // ------------------------------------------------------------------

    /// Keep records satisfying `pred` (PINQ `Where`). Stability ×1.
    ///
    /// Lazy: fuses onto the pending plan; nothing runs until a barrier
    /// forces materialization.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Queryable<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let t = SpanTimer::start();
        let plan = match self.view() {
            View::Source(src) => {
                let len = src.len();
                LazyPlan::new(len, 1, move |r: Range<usize>, emit: &mut dyn FnMut(T)| {
                    src.for_range(r, &mut |rec| {
                        if pred(rec) {
                            emit(rec.clone());
                        }
                    });
                })
            }
            View::Chain(run, len, fused) => LazyPlan::new(
                len,
                fused + 1,
                move |r: Range<usize>, emit: &mut dyn FnMut(T)| {
                    run(r, &mut |rec: T| {
                        if pred(&rec) {
                            emit(rec);
                        }
                    });
                },
            ),
        };
        let q = self.derive_lazy("filter", None, plan, self.stability);
        self.emit_transform("filter", q.stability, t.elapsed_ns(), 0);
        q
    }

    /// Transform each record (PINQ `Select`). Stability ×1.
    ///
    /// Lazy: fuses onto the pending plan; nothing runs until a barrier
    /// forces materialization.
    pub fn map<U>(&self, f: impl Fn(&T) -> U + Send + Sync + 'static) -> Queryable<U>
    where
        T: Send + Sync + 'static,
        U: 'static,
    {
        let t = SpanTimer::start();
        let plan = match self.view() {
            View::Source(src) => {
                let len = src.len();
                LazyPlan::new(len, 1, move |r: Range<usize>, emit: &mut dyn FnMut(U)| {
                    src.for_range(r, &mut |rec| emit(f(rec)));
                })
            }
            View::Chain(run, len, fused) => LazyPlan::new(
                len,
                fused + 1,
                move |r: Range<usize>, emit: &mut dyn FnMut(U)| {
                    run(r, &mut |rec: T| emit(f(&rec)));
                },
            ),
        };
        let q = self.derive_lazy("map", None, plan, self.stability);
        self.emit_transform("map", q.stability, t.elapsed_ns(), 0);
        q
    }

    /// Expand each record into up to `bound` records (PINQ `SelectMany`).
    /// Outputs beyond `bound` per input are truncated, which is what lets
    /// the engine promise stability ×`bound`.
    ///
    /// Lazy: fuses onto the pending plan; nothing runs until a barrier
    /// forces materialization. The stability scaling applies at
    /// declaration, as always.
    pub fn select_many<U>(
        &self,
        bound: usize,
        f: impl Fn(&T) -> Vec<U> + Send + Sync + 'static,
    ) -> Result<Queryable<U>>
    where
        T: Send + Sync + 'static,
        U: 'static,
    {
        if bound == 0 {
            return Err(Error::InvalidFanout(bound));
        }
        let t = SpanTimer::start();
        let plan = match self.view() {
            View::Source(src) => {
                let len = src.len();
                LazyPlan::new(len, 1, move |r: Range<usize>, emit: &mut dyn FnMut(U)| {
                    src.for_range(r, &mut |rec| {
                        let mut items = f(rec);
                        items.truncate(bound);
                        for item in items {
                            emit(item);
                        }
                    });
                })
            }
            View::Chain(run, len, fused) => LazyPlan::new(
                len,
                fused + 1,
                move |r: Range<usize>, emit: &mut dyn FnMut(U)| {
                    run(r, &mut |rec: T| {
                        let mut items = f(&rec);
                        items.truncate(bound);
                        for item in items {
                            emit(item);
                        }
                    });
                },
            ),
        };
        let q = self.derive_lazy(
            "select_many",
            Some(format!("bound={bound}")),
            plan,
            self.stability * bound as f64,
        );
        self.emit_transform("select_many", q.stability, t.elapsed_ns(), 0);
        Ok(q)
    }

    /// Group records by a key (PINQ `GroupBy`). Stability ×2: adding or
    /// removing one source record can change two output records (the group
    /// it leaves and the group it joins, in the multiset-difference sense).
    pub fn group_by<K>(&self, key: impl Fn(&T) -> K) -> Queryable<Group<K, T>>
    where
        K: Eq + Hash + Clone,
        T: Clone + Send + Sync,
    {
        let t = SpanTimer::start();
        let records = self.records();
        let mut order: Vec<K> = Vec::new();
        let mut groups: HashMap<K, Vec<T>> = HashMap::new();
        for r in records.iter() {
            let k = key(r);
            groups
                .entry(k.clone())
                .or_insert_with(|| {
                    order.push(k.clone());
                    Vec::new()
                })
                .push(r.clone());
        }
        let out: Vec<Group<K, T>> = order
            .into_iter()
            .map(|k| {
                let items = groups.remove(&k).expect("key recorded on first sight");
                Group { key: k, items }
            })
            .collect();
        let n_out = out.len();
        let q = self.derive("group_by", out, self.stability * 2.0);
        self.emit_transform("group_by", q.stability, t.elapsed_ns(), n_out);
        q
    }

    /// Keep the first record for each distinct key (PINQ `Distinct` over a
    /// projection). Stability ×1.
    pub fn distinct_by<K>(&self, key: impl Fn(&T) -> K) -> Queryable<T>
    where
        K: Eq + Hash,
        T: Clone + Send + Sync,
    {
        let t = SpanTimer::start();
        let records = self.records();
        let mut seen = std::collections::HashSet::new();
        let out: Vec<T> = records
            .iter()
            .filter(|r| seen.insert(key(r)))
            .cloned()
            .collect();
        let n_out = out.len();
        let q = self.derive("distinct_by", out, self.stability);
        self.emit_transform("distinct_by", q.stability, t.elapsed_ns(), n_out);
        q
    }

    /// Keep one copy of each distinct record. Stability ×1.
    pub fn distinct(&self) -> Queryable<T>
    where
        T: Eq + Hash + Clone + Send + Sync,
    {
        self.distinct_by(|r| r.clone())
    }

    /// PINQ's privacy-bounded join: group both inputs by key and emit one
    /// [`JoinGroup`] per key present in *both* inputs. No sensitivity
    /// increase for either input; an aggregation on the result charges both
    /// source budgets.
    pub fn join<U, K>(
        &self,
        other: &Queryable<U>,
        left_key: impl Fn(&T) -> K,
        right_key: impl Fn(&U) -> K,
    ) -> Queryable<JoinGroup<K, T, U>>
    where
        K: Eq + Hash + Clone,
        T: Clone + Send + Sync,
        U: Clone + Send + Sync,
    {
        let t = SpanTimer::start();
        let left_records = self.records();
        let right_records = other.records();
        let mut left: HashMap<K, Vec<T>> = HashMap::new();
        let mut order: Vec<K> = Vec::new();
        for r in left_records.iter() {
            let k = left_key(r);
            left.entry(k.clone())
                .or_insert_with(|| {
                    order.push(k.clone());
                    Vec::new()
                })
                .push(r.clone());
        }
        let mut right: HashMap<K, Vec<U>> = HashMap::new();
        for r in right_records.iter() {
            right.entry(right_key(r)).or_default().push(r.clone());
        }
        let out: Vec<JoinGroup<K, T, U>> = order
            .into_iter()
            .filter_map(|k| {
                let rs = right.get(&k)?.clone();
                let ls = left.remove(&k).expect("key recorded on first sight");
                Some(JoinGroup {
                    key: k,
                    left: ls,
                    right: rs,
                })
            })
            .collect();
        let n_out = out.len();
        let q = Queryable {
            data: Data::Ready(Shards::from_vec(out)),
            charge: self.combined_charge(other.charge.clone(), other.stability),
            noise: self.noise.clone(),
            stability: 1.0,
            label: self.label.clone(),
            sink: self.sink.clone(),
            ctx: self.ctx.clone(),
            lineage: OpNode::combined("join", self.lineage.clone(), other.lineage.clone()),
        };
        self.emit_transform("join", q.stability, t.elapsed_ns(), n_out);
        q
    }

    /// A charge node billing both this queryable's lineage and another's,
    /// each scaled by its accumulated stability (`concat`, `join`,
    /// `intersect` all reset stability to 1 against this combined node).
    fn combined_charge(&self, other: Arc<ChargeNode>, other_stability: f64) -> Arc<ChargeNode> {
        kernel::scaled_pair(&self.charge, self.stability, &other, other_stability)
    }

    /// Concatenate two protected datasets (PINQ `Concat`). No sensitivity
    /// increase for either input; aggregations charge both budgets.
    ///
    /// Zero-copy: the output buffer references both inputs' shards. When
    /// one input is empty the other's buffer handle is reused as-is; the
    /// combined charge node is built either way, because a neighboring
    /// dataset of the empty side could hold a record.
    pub fn concat(&self, other: &Queryable<T>) -> Queryable<T>
    where
        T: Clone + Send + Sync,
    {
        let t = SpanTimer::start();
        let left = self.records();
        let right = other.records();
        let records = if right.is_empty() {
            left
        } else if left.is_empty() {
            right
        } else {
            left.concat(&right)
        };
        let n_out = records.len();
        let q = Queryable {
            data: Data::Ready(records),
            charge: self.combined_charge(other.charge.clone(), other.stability),
            noise: self.noise.clone(),
            stability: 1.0,
            label: self.label.clone(),
            sink: self.sink.clone(),
            ctx: self.ctx.clone(),
            lineage: OpNode::combined("concat", self.lineage.clone(), other.lineage.clone()),
        };
        self.emit_transform("concat", q.stability, t.elapsed_ns(), n_out);
        q
    }

    /// Distinct records present in both inputs (PINQ `Intersect`). No
    /// sensitivity increase; aggregations charge both budgets.
    pub fn intersect(&self, other: &Queryable<T>) -> Queryable<T>
    where
        T: Eq + Hash + Clone + Send + Sync,
    {
        let t = SpanTimer::start();
        let mine = self.records();
        let others = other.records();
        let theirs: std::collections::HashSet<&T> = others.iter().collect();
        let mut seen = std::collections::HashSet::new();
        let out: Vec<T> = mine
            .iter()
            .filter(|r| theirs.contains(r) && seen.insert((*r).clone()))
            .cloned()
            .collect();
        let n_out = out.len();
        let q = Queryable {
            data: Data::Ready(Shards::from_vec(out)),
            charge: self.combined_charge(other.charge.clone(), other.stability),
            noise: self.noise.clone(),
            stability: 1.0,
            label: self.label.clone(),
            sink: self.sink.clone(),
            ctx: self.ctx.clone(),
            lineage: OpNode::combined("intersect", self.lineage.clone(), other.lineage.clone()),
        };
        self.emit_transform("intersect", q.stability, t.elapsed_ns(), n_out);
        q
    }

    /// Split into disjoint parts by a *data-independent* key list (PINQ
    /// `Partition`). Returns one queryable per key, aligned with `keys`;
    /// records mapping to a key outside the list are dropped.
    ///
    /// The source budget is charged the **maximum** of the parts' spends,
    /// not the sum — parallel composition. Partitioning packets by port and
    /// analyzing every port costs the same as analyzing one port.
    ///
    /// A barrier: forces the pending fused plan. Under [`ExecCtx::Pool`]
    /// the bucketing pass runs chunked on the pool — each fixed-size chunk
    /// fills per-chunk local buckets, concatenated in chunk order — so
    /// every part holds its records in the sequential order for any worker
    /// count.
    ///
    /// Returns [`Error::DuplicatePartitionKeys`] when `keys` repeats a key:
    /// buckets are looked up by key, so a duplicate would silently route
    /// all matching records to one of the two buckets and leave the other
    /// empty.
    pub fn partition<K>(
        &self,
        keys: &[K],
        key_fn: impl Fn(&T) -> K + Send + Sync,
    ) -> Result<Vec<Queryable<T>>>
    where
        K: Eq + Hash + Clone + Sync,
        T: Clone + Send + Sync,
    {
        let prof = self.agg_span("partition");
        let t = SpanTimer::start();
        let index_of: HashMap<&K, usize> = keys.iter().enumerate().map(|(i, k)| (k, i)).collect();
        if index_of.len() != keys.len() {
            return Err(Error::DuplicatePartitionKeys);
        }
        let records = self.records();
        prof.set_records(records.len() as u64);
        let parts: Vec<Vec<T>> = match &self.ctx {
            ExecCtx::Sequential => {
                let mut parts: Vec<Vec<T>> = (0..keys.len()).map(|_| Vec::new()).collect();
                for r in records.iter() {
                    if let Some(&i) = index_of.get(&key_fn(r)) {
                        parts[i].push(r.clone());
                    }
                }
                // Sequential runs are still runs: one kernel event with
                // `workers: 1`, so event streams cover both modes.
                self.emit_exec("partition", 1, 1, t.elapsed_ns());
                parts
            }
            ExecCtx::Pool(pool) => {
                let ranges = pool.chunks(records.len());
                let n_tasks = ranges.len();
                let locals: Vec<Vec<Vec<T>>> = pool.run(&ranges, |_, r| {
                    let mut buckets: Vec<Vec<T>> = (0..keys.len()).map(|_| Vec::new()).collect();
                    records.for_range(r.clone(), &mut |rec| {
                        if let Some(&i) = index_of.get(&key_fn(rec)) {
                            buckets[i].push(rec.clone());
                        }
                    });
                    buckets
                });
                self.emit_exec("partition", pool.workers(), n_tasks, t.elapsed_ns());
                let mut parts: Vec<Vec<T>> = (0..keys.len()).map(|_| Vec::new()).collect();
                for local in locals {
                    for (part, mut bucket) in parts.iter_mut().zip(local) {
                        part.append(&mut bucket);
                    }
                }
                parts
            }
        };
        let out = self.wrap_parts(parts);
        // One event for the whole partition; the part count is the (public)
        // key-list length, not a record count.
        self.emit_transform("partition", 1.0, t.elapsed_ns(), keys.len());
        Ok(out)
    }

    /// Wrap materialized part buckets as queryables sharing one
    /// [`PartitionLedger`], so that aggregations across parts charge the
    /// source budget their maximum (parallel composition).
    fn wrap_parts(&self, parts: Vec<Vec<T>>) -> Vec<Queryable<T>> {
        let n_parts = parts.len();
        let nodes = kernel::partition_nodes(&self.charge, self.stability, n_parts);
        parts
            .into_iter()
            .zip(nodes)
            .enumerate()
            .map(|(index, (records, charge))| Queryable {
                data: Data::Ready(Shards::from_vec(records)),
                charge,
                noise: self.noise.clone(),
                stability: 1.0,
                label: self.label.clone(),
                sink: self.sink.clone(),
                ctx: self.ctx.clone(),
                lineage: OpNode::derived(
                    "partition",
                    1.0,
                    false,
                    Some(format!("part[{index}] of {n_parts}")),
                    self.lineage.clone(),
                ),
            })
            .collect()
    }

    /// Partition by a data-independent key list and release a noisy count
    /// of **every part** in one pass — the batched form of
    /// [`Queryable::partition`] followed by per-part
    /// [`Queryable::noisy_count`], with identical privacy arithmetic and
    /// bit-identical releases:
    ///
    /// - the budget sees the same `PartitionLedger` with the same parent
    ///   scaling, charged once per part *in part order* with the same
    ///   `noisy_count` provenance, so ε accounting, explain traces, and
    ///   failure behavior (parts before the failing one stay charged) match
    ///   the unbatched form exactly;
    /// - noise is drawn from the shared stream once per part, in part
    ///   order, on the calling thread — the same draws the unbatched form
    ///   takes;
    /// - only a key histogram is computed (streamed over the fused chain
    ///   when nothing has materialized): the per-part record buffers never
    ///   exist. A 256-way fan-out costs one pass and 256 integers instead
    ///   of 256 allocations.
    ///
    /// Returns [`Error::DuplicatePartitionKeys`] when `keys` repeats a key,
    /// like [`Queryable::partition`].
    pub fn partition_noisy_counts<K>(
        &self,
        keys: &[K],
        key_fn: impl Fn(&T) -> K + Send + Sync,
        eps: f64,
    ) -> Result<Vec<f64>>
    where
        K: Eq + Hash + Sync,
        T: Send + Sync,
    {
        let prof = self.agg_span("partition_noisy_counts");
        let t = SpanTimer::start();
        let index_of: HashMap<&K, usize> = keys.iter().enumerate().map(|(i, k)| (k, i)).collect();
        if index_of.len() != keys.len() {
            return Err(Error::DuplicatePartitionKeys);
        }
        check_epsilon(eps)?;
        if !(self.stability.is_finite() && self.stability > 0.0) {
            return Err(Error::InvalidStability(self.stability));
        }
        // One histogram pass; integer merges in chunk order keep the counts
        // identical for any worker count (and to the sequential pass).
        let (src, domain) = self.stream();
        let counts: Vec<usize> = match &self.ctx {
            ExecCtx::Sequential => {
                let mut counts = vec![0usize; keys.len()];
                src.walk(0..domain, &mut |rec| {
                    if let Some(&i) = index_of.get(&key_fn(rec)) {
                        counts[i] += 1;
                    }
                });
                self.emit_exec("partition_noisy_counts", 1, 1, t.elapsed_ns());
                counts
            }
            ExecCtx::Pool(pool) => {
                let ranges = pool.chunks(domain);
                let locals: Vec<Vec<usize>> = pool.run(&ranges, |_, rg| {
                    let mut counts = vec![0usize; keys.len()];
                    src.walk(rg.clone(), &mut |rec| {
                        if let Some(&i) = index_of.get(&key_fn(rec)) {
                            counts[i] += 1;
                        }
                    });
                    counts
                });
                self.emit_exec(
                    "partition_noisy_counts",
                    pool.workers(),
                    ranges.len(),
                    t.elapsed_ns(),
                );
                let mut counts = vec![0usize; keys.len()];
                for local in locals {
                    for (c, l) in counts.iter_mut().zip(local) {
                        *c += l;
                    }
                }
                counts
            }
        };
        prof.set_records(counts.iter().sum::<usize>() as u64);
        // The charge nodes the unbatched form builds in `wrap_parts`: parts
        // charge through one shared ledger scaled by this queryable's
        // stability; each part's own stability is 1.
        let nodes = kernel::partition_nodes(&self.charge, self.stability, keys.len());
        let prep = kernel::prepare("noisy_count", self.label.clone());
        let mut out = Vec::with_capacity(keys.len());
        for (node, &n) in nodes.iter().zip(counts.iter()) {
            let part_timer = SpanTimer::start();
            let r = (|| {
                kernel::charge_prepared(node, eps, &prep)?;
                aggregates::noisy_count(&self.noise, n, eps)
            })();
            // Per-part events mirror the unbatched per-part noisy_count:
            // stability 1, eps charged when the part's release succeeded.
            let outcome = outcome_of(&r);
            self.sink.emit(|| {
                Event::Aggregate(AggregateEvent {
                    operator: "noisy_count",
                    mechanism: "laplace",
                    label: self.label.clone(),
                    stability: 1.0,
                    eps_requested: eps,
                    eps_charged: if outcome == Outcome::Ok { eps } else { 0.0 },
                    outcome,
                    released: r.as_ref().ok().copied(),
                    wall_ns: part_timer.elapsed_ns(),
                    at_ns: part_timer.started_at_ns(),
                    #[cfg(feature = "trusted-owner")]
                    input_records: n as u64,
                })
            });
            out.push(r?);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Aggregations
    // ------------------------------------------------------------------

    /// Noisy count of records: `n + Lap(1/ε)`. Charges `stability × ε`.
    ///
    /// Fused: an unforced pipeline is *streamed*, counting emissions of the
    /// fused pass without allocating (or memoizing) an output buffer. The
    /// count is an integer either way, so the release is bit-identical to
    /// counting a materialized buffer, in both execution modes and for any
    /// worker count.
    pub fn noisy_count(&self, eps: f64) -> Result<f64>
    where
        T: Send + Sync,
    {
        let prof = self.agg_span("noisy_count");
        let t = SpanTimer::start();
        let n = self.stream_count("noisy_count", &t);
        prof.set_records(n as u64);
        let r = self
            .pay(eps, "noisy_count")
            .and_then(|()| aggregates::noisy_count(&self.noise, n, eps));
        self.emit_aggregate(
            "noisy_count",
            "laplace",
            eps,
            r.as_ref().ok().copied(),
            outcome_of(&r),
            t,
            n,
        );
        r
    }

    /// Noisy integral count via the geometric mechanism, clamped at zero.
    ///
    /// Fused like [`Queryable::noisy_count`]: an unforced pipeline streams.
    pub fn noisy_count_int(&self, eps: f64) -> Result<i64>
    where
        T: Send + Sync,
    {
        let prof = self.agg_span("noisy_count_int");
        let t = SpanTimer::start();
        let n = self.stream_count("noisy_count_int", &t);
        prof.set_records(n as u64);
        let r = self
            .pay(eps, "noisy_count_int")
            .and_then(|()| aggregates::noisy_count_int(&self.noise, n, eps));
        self.emit_aggregate(
            "noisy_count_int",
            "geometric",
            eps,
            r.as_ref().ok().map(|&v| v as f64),
            outcome_of(&r),
            t,
            n,
        );
        r
    }

    /// Noisy sum of `f(record)` with values clamped to `[-1, 1]`.
    pub fn noisy_sum(&self, eps: f64, f: impl Fn(&T) -> f64 + Send + Sync) -> Result<f64>
    where
        T: Send + Sync,
    {
        self.noisy_sum_clamped(eps, 1.0, f)
    }

    /// Noisy sum with values clamped to `[-bound, bound]`; noise scale
    /// `bound/ε`.
    ///
    /// Fused: an unforced pipeline streams through the clamp-and-sum fold
    /// without materializing an output buffer.
    ///
    /// Under [`ExecCtx::Sequential`] the clamped values sum flat, in record
    /// order. Under [`ExecCtx::Pool`] partial sums are computed per
    /// fixed-size chunk concurrently, combined in chunk order, and a single
    /// Laplace draw is taken on the calling thread — identical budget
    /// charge and noise stream, bit-identical for any worker count, but
    /// possibly an ulp away from the flat sequential sum because the
    /// chunked sum associates additions at chunk boundaries. (For a fused
    /// pipeline the chunks tile the *source*, so a pooled sum taken before
    /// forcing may likewise sit an ulp from one taken after.)
    pub fn noisy_sum_clamped(
        &self,
        eps: f64,
        bound: f64,
        f: impl Fn(&T) -> f64 + Send + Sync,
    ) -> Result<f64>
    where
        T: Send + Sync,
    {
        let prof = self.agg_span("noisy_sum");
        let t = SpanTimer::start();
        let mut n_records = 0usize;
        let r = (|| {
            if !(bound.is_finite() && bound > 0.0) {
                return Err(Error::InvalidRange {
                    lo: -bound,
                    hi: bound,
                });
            }
            self.pay(eps, "noisy_sum")?;
            let (src, domain) = self.stream();
            let total = match &self.ctx {
                ExecCtx::Sequential => {
                    let mut total = 0.0;
                    src.walk(0..domain, &mut |rec| {
                        total += aggregates::clamp(f(rec), -bound, bound);
                        n_records += 1;
                    });
                    // Sequential runs still emit a kernel event: workers 1.
                    self.emit_exec("noisy_sum", 1, 1, t.elapsed_ns());
                    total
                }
                ExecCtx::Pool(pool) => {
                    let ranges = pool.chunks(domain);
                    let partials: Vec<(f64, usize)> = pool.run(&ranges, |_, rg| {
                        let mut s = 0.0;
                        let mut n = 0usize;
                        src.walk(rg.clone(), &mut |rec| {
                            s += aggregates::clamp(f(rec), -bound, bound);
                            n += 1;
                        });
                        (s, n)
                    });
                    self.emit_exec("noisy_sum", pool.workers(), ranges.len(), t.elapsed_ns());
                    n_records = partials.iter().map(|&(_, n)| n).sum();
                    partials.iter().map(|&(s, _)| s).sum::<f64>()
                }
            };
            prof.set_records(n_records as u64);
            Ok(total + crate::mechanisms::laplace_noise(&self.noise, bound / eps))
        })();
        self.emit_aggregate(
            "noisy_sum",
            "laplace",
            eps,
            r.as_ref().ok().copied(),
            outcome_of(&r),
            t,
            n_records,
        );
        r
    }

    /// Noisy vector sum of `f(record)` via the vector Laplace mechanism:
    /// each record's vector is clamped onto the L1 ball of radius
    /// `l1_bound`, and every coordinate of the sum receives
    /// `Lap(l1_bound/ε)` noise — one ε charge for the entire vector.
    pub fn noisy_sum_vector(
        &self,
        eps: f64,
        dims: usize,
        l1_bound: f64,
        f: impl Fn(&T) -> Vec<f64>,
    ) -> Result<Vec<f64>>
    where
        T: Send + Sync,
    {
        let prof = self.agg_span("noisy_sum_vector");
        let t = SpanTimer::start();
        let records = self.records();
        prof.set_records(records.len() as u64);
        let r = (|| {
            if !(l1_bound.is_finite() && l1_bound > 0.0) {
                return Err(Error::InvalidRange {
                    lo: 0.0,
                    hi: l1_bound,
                });
            }
            self.pay(eps, "noisy_sum_vector")?;
            aggregates::noisy_vector_sum(&self.noise, records.iter().map(f), dims, l1_bound, eps)
        })();
        // Vector releases do not fit the scalar `released` slot; the event
        // still records ε, stability, outcome and timing.
        self.emit_aggregate(
            "noisy_sum_vector",
            "laplace",
            eps,
            None,
            outcome_of(&r),
            t,
            records.len(),
        );
        r
    }

    /// Noisy average of `f(record)` with values clamped to `[-1, 1]`;
    /// noise std `√8/(εn)`.
    pub fn noisy_average(&self, eps: f64, f: impl Fn(&T) -> f64) -> Result<f64>
    where
        T: Send + Sync,
    {
        let prof = self.agg_span("noisy_average");
        let t = SpanTimer::start();
        let records = self.records();
        prof.set_records(records.len() as u64);
        let r = self
            .pay(eps, "noisy_average")
            .and_then(|()| aggregates::noisy_average(&self.noise, records.iter().map(f), eps));
        self.emit_aggregate(
            "noisy_average",
            "laplace",
            eps,
            r.as_ref().ok().copied(),
            outcome_of(&r),
            t,
            records.len(),
        );
        r
    }

    /// Noisy average of values known to lie in `[lo, hi]`: affinely rescaled
    /// to `[-1, 1]`, averaged, and mapped back.
    pub fn noisy_average_in(&self, eps: f64, lo: f64, hi: f64, f: impl Fn(&T) -> f64) -> Result<f64>
    where
        T: Send + Sync,
    {
        if lo >= hi || !lo.is_finite() || !hi.is_finite() {
            return Err(Error::InvalidRange { lo, hi });
        }
        let mid = (lo + hi) / 2.0;
        let half = (hi - lo) / 2.0;
        let unit = self.noisy_average(eps, |r| (f(r) - mid) / half)?;
        Ok(mid + unit * half)
    }

    /// Noisily select the candidate key matching the most records, via the
    /// exponential mechanism: candidate `k` is chosen with probability
    /// `∝ exp(ε·count(k)/2)`. One record changes any count by one, so the
    /// score sensitivity is 1 and the whole selection costs a single
    /// `stability × ε` — far cheaper than releasing every count.
    ///
    /// Returns the index into `candidates`.
    pub fn most_common_key<K>(
        &self,
        eps: f64,
        candidates: &[K],
        key: impl Fn(&T) -> K,
    ) -> Result<usize>
    where
        K: Eq + Hash,
        T: Send + Sync,
    {
        let prof = self.agg_span("most_common_key");
        let t = SpanTimer::start();
        let records = self.records();
        prof.set_records(records.len() as u64);
        let r = (|| {
            if candidates.is_empty() {
                return Err(Error::EmptyCandidates);
            }
            self.pay(eps, "most_common_key")?;
            let index_of: HashMap<&K, usize> =
                candidates.iter().enumerate().map(|(i, k)| (k, i)).collect();
            let mut counts = vec![0f64; candidates.len()];
            for r in records.iter() {
                if let Some(&i) = index_of.get(&key(r)) {
                    counts[i] += 1.0;
                }
            }
            crate::mechanisms::exponential_mechanism_index(&self.noise, &counts, eps, 1.0)
        })();
        self.emit_aggregate(
            "most_common_key",
            "exponential",
            eps,
            r.as_ref().ok().map(|&i| i as f64),
            outcome_of(&r),
            t,
            records.len(),
        );
        r
    }

    /// Noisy median of `f(record)` over `[lo, hi]` discretized into
    /// `buckets` candidate cut points, via the exponential mechanism.
    ///
    /// Fused: an unforced pipeline streams its value projection straight
    /// off the source — the record buffer is never allocated, only the
    /// `f64` projection. Projection order is the record order, so the
    /// candidate scores (and the released value at a fixed seed) are
    /// identical whether or not the pipeline materialized first.
    ///
    /// Under [`ExecCtx::Pool`] the projection runs concurrently over
    /// fixed-size chunks, concatenated in chunk order, and the mechanism
    /// then runs on the calling thread — identical to the sequential path
    /// for any worker count.
    pub fn noisy_median(
        &self,
        eps: f64,
        lo: f64,
        hi: f64,
        buckets: usize,
        f: impl Fn(&T) -> f64 + Send + Sync,
    ) -> Result<f64>
    where
        T: Send + Sync,
    {
        let prof = self.agg_span("noisy_median");
        let t = SpanTimer::start();
        let mut n_records = 0usize;
        let r = (|| {
            if lo >= hi || !lo.is_finite() || !hi.is_finite() {
                return Err(Error::InvalidRange { lo, hi });
            }
            if buckets == 0 {
                return Err(Error::EmptyCandidates);
            }
            self.pay(eps, "noisy_median")?;
            let (src, domain) = self.stream();
            let values: Vec<f64> = match &self.ctx {
                ExecCtx::Sequential => {
                    let mut values = Vec::new();
                    src.walk(0..domain, &mut |rec| values.push(f(rec)));
                    // Sequential runs still emit a kernel event: workers 1.
                    self.emit_exec("noisy_median", 1, 1, t.elapsed_ns());
                    values
                }
                ExecCtx::Pool(pool) => {
                    let ranges = pool.chunks(domain);
                    let chunks: Vec<Vec<f64>> = pool.run(&ranges, |_, rg| {
                        let mut v = Vec::new();
                        src.walk(rg.clone(), &mut |rec| v.push(f(rec)));
                        v
                    });
                    self.emit_exec("noisy_median", pool.workers(), ranges.len(), t.elapsed_ns());
                    let mut values = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
                    for mut c in chunks {
                        values.append(&mut c);
                    }
                    values
                }
            };
            n_records = values.len();
            prof.set_records(n_records as u64);
            aggregates::noisy_median(&self.noise, &values, lo, hi, buckets, eps)
        })();
        self.emit_aggregate(
            "noisy_median",
            "exponential",
            eps,
            r.as_ref().ok().copied(),
            outcome_of(&r),
            t,
            n_records,
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecPool;

    #[derive(Clone, Debug, PartialEq)]
    struct Pkt {
        src: u32,
        port: u16,
        len: u32,
    }

    fn trace() -> Vec<Pkt> {
        let mut v = Vec::new();
        // 120 "heavy" hosts sending 2000 bytes to port 80.
        for src in 0..120 {
            v.push(Pkt {
                src,
                port: 80,
                len: 2000,
            });
        }
        // 50 light hosts.
        for src in 1000..1050 {
            v.push(Pkt {
                src,
                port: 80,
                len: 100,
            });
        }
        // Unrelated traffic.
        for src in 2000..2100 {
            v.push(Pkt {
                src,
                port: 443,
                len: 5000,
            });
        }
        v
    }

    fn setup(budget: f64) -> (Accountant, Queryable<Pkt>) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(42);
        let q = Queryable::new(trace(), &acct, &noise);
        (acct, q)
    }

    #[test]
    fn paper_section_2_3_example() {
        // "count distinct hosts that send more than 1024 bytes to port 80";
        // the noise-free answer on our synthetic trace is 120.
        let (acct, q) = setup(10.0);
        let mut answers = Vec::new();
        for _ in 0..20 {
            let c = q
                .filter(|p| p.port == 80)
                .group_by(|p| p.src)
                .filter(|g| g.items.iter().map(|p| p.len).sum::<u32>() > 1024)
                .noisy_count(0.1)
                .unwrap();
            answers.push(c);
        }
        let mean = answers.iter().sum::<f64>() / answers.len() as f64;
        assert!((mean - 120.0).abs() < 15.0, "mean {mean}");
        // Each query costs 0.1 × 2 (GroupBy) = 0.2.
        assert!((acct.spent() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn filter_and_map_do_not_scale_cost() {
        let (acct, q) = setup(1.0);
        q.filter(|p| p.port == 80)
            .map(|p| p.len)
            .filter(|&l| l > 0)
            .noisy_count(0.3)
            .unwrap();
        assert!((acct.spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn group_by_doubles_cost() {
        let (acct, q) = setup(1.0);
        q.group_by(|p| p.src).noisy_count(0.25).unwrap();
        assert!((acct.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nested_group_by_quadruples_cost() {
        let (acct, q) = setup(2.0);
        q.group_by(|p| p.src)
            .group_by(|g| g.items.len())
            .noisy_count(0.25)
            .unwrap();
        assert!((acct.spent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn select_many_scales_cost_and_truncates() {
        let (acct, q) = setup(10.0);
        let expanded = q.select_many(3, |p| vec![p.len; 10]).unwrap();
        assert_eq!(expanded.stability(), 3.0);
        expanded.noisy_count(0.1).unwrap();
        assert!((acct.spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn select_many_rejects_zero_fanout() {
        let (_, q) = setup(1.0);
        assert!(matches!(
            q.select_many(0, |p| vec![p.len]),
            Err(Error::InvalidFanout(0))
        ));
    }

    #[test]
    fn distinct_by_keeps_one_record_per_key() {
        let (acct, q) = setup(1.0);
        let hosts = q.distinct_by(|p| p.src);
        let c = hosts.noisy_count(5.0);
        // 270 distinct hosts in the trace; eps=5 noise is tiny.
        assert!(c.is_err() || acct.spent() > 0.0);
        // Re-run with adequate budget to check the value.
        let acct2 = Accountant::new(10.0);
        let noise = NoiseSource::seeded(1);
        let q2 = Queryable::new(trace(), &acct2, &noise);
        let c2 = q2.distinct_by(|p| p.src).noisy_count(5.0).unwrap();
        assert!((c2 - 270.0).abs() < 3.0, "count {c2}");
    }

    #[test]
    fn budget_exhaustion_blocks_further_queries() {
        let (_, q) = setup(0.5);
        q.noisy_count(0.4).unwrap();
        assert!(matches!(
            q.noisy_count(0.2),
            Err(Error::BudgetExceeded { .. })
        ));
        // A smaller query still fits.
        q.noisy_count(0.05).unwrap();
    }

    #[test]
    fn partition_charges_max_not_sum() {
        let (acct, q) = setup(1.0);
        let ports: Vec<u16> = vec![80, 443, 22];
        let parts = q.partition(&ports, |p| p.port).unwrap();
        assert_eq!(parts.len(), 3);
        for part in &parts {
            part.noisy_count(0.3).unwrap();
        }
        assert!((acct.spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn partition_respects_upstream_stability() {
        let (acct, q) = setup(10.0);
        // GroupBy (×2) before partitioning: each part spend is doubled at
        // the source.
        let grouped = q.group_by(|p| p.src);
        let sizes: Vec<usize> = vec![1, 2, 3];
        let parts = grouped.partition(&sizes, |g| g.items.len()).unwrap();
        parts[0].noisy_count(0.25).unwrap();
        assert!((acct.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partition_drops_unlisted_keys() {
        let acct = Accountant::new(100.0);
        let noise = NoiseSource::seeded(7);
        let q = Queryable::new(trace(), &acct, &noise);
        let ports: Vec<u16> = vec![80];
        let parts = q.partition(&ports, |p| p.port).unwrap();
        let c = parts[0].noisy_count(50.0).unwrap();
        // Port-80 records: 120 + 50 = 170. Port-443 records are dropped.
        assert!((c - 170.0).abs() < 1.0, "count {c}");
    }

    #[test]
    fn join_charges_both_inputs() {
        let a_budget = Accountant::new(1.0);
        let b_budget = Accountant::new(1.0);
        let noise = NoiseSource::seeded(11);
        let a = Queryable::new(vec![(1u32, "x"), (2, "y")], &a_budget, &noise);
        let b = Queryable::new(vec![(1u32, 10.0f64), (3, 30.0)], &b_budget, &noise);
        let joined = a.join(&b, |l| l.0, |r| r.0);
        joined.noisy_count(0.2).unwrap();
        assert!((a_budget.spent() - 0.2).abs() < 1e-12);
        assert!((b_budget.spent() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn join_emits_one_record_per_matched_key() {
        let budget = Accountant::new(100.0);
        let noise = NoiseSource::seeded(13);
        let a = Queryable::new(vec![1u32, 1, 2, 4], &budget, &noise);
        let b = Queryable::new(vec![1u32, 2, 2, 3], &budget, &noise);
        let joined = a.join(&b, |&l| l, |&r| r);
        // Matched keys: 1 and 2 → two JoinGroup records.
        let c = joined.noisy_count(20.0).unwrap();
        assert!((c - 2.0).abs() < 1.0, "count {c}");
    }

    #[test]
    fn join_failure_rolls_back_first_input() {
        let rich = Accountant::new(10.0);
        let poor = Accountant::new(0.05);
        let noise = NoiseSource::seeded(17);
        let a = Queryable::new(vec![1u32], &rich, &noise);
        let b = Queryable::new(vec![1u32], &poor, &noise);
        let joined = a.join(&b, |&l| l, |&r| r);
        assert!(joined.noisy_count(0.1).is_err());
        assert_eq!(rich.spent(), 0.0);
        assert_eq!(poor.spent(), 0.0);
    }

    #[test]
    fn concat_combines_records_and_budgets() {
        let a_budget = Accountant::new(1.0);
        let b_budget = Accountant::new(1.0);
        let noise = NoiseSource::seeded(19);
        let a = Queryable::new(vec![0u8; 100], &a_budget, &noise);
        let b = Queryable::new(vec![0u8; 50], &b_budget, &noise);
        let both = a.concat(&b);
        let c = both.noisy_count(0.5).unwrap();
        assert!((c - 150.0).abs() < 20.0);
        assert!((a_budget.spent() - 0.5).abs() < 1e-12);
        assert!((b_budget.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intersect_keeps_common_distinct_records() {
        let budget = Accountant::new(100.0);
        let noise = NoiseSource::seeded(23);
        let a = Queryable::new(vec![1u32, 2, 2, 3], &budget, &noise);
        let b = Queryable::new(vec![2u32, 3, 4], &budget, &noise);
        let c = a.intersect(&b).noisy_count(20.0).unwrap();
        assert!((c - 2.0).abs() < 1.0, "count {c}"); // {2, 3}
    }

    #[test]
    fn noisy_sum_respects_clamping() {
        let budget = Accountant::new(2000.0);
        let noise = NoiseSource::seeded(29);
        let q = Queryable::new(vec![0.5f64, 0.5, 100.0, -100.0], &budget, &noise);
        let mut total = 0.0;
        for _ in 0..200 {
            total += q.noisy_sum(5.0, |&v| v).unwrap();
        }
        // clamp: 0.5 + 0.5 + 1 - 1 = 1.
        assert!((total / 200.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn noisy_average_in_range_maps_back() {
        let budget = Accountant::new(1000.0);
        let noise = NoiseSource::seeded(31);
        let vals: Vec<f64> = (0..1000).map(|i| 100.0 + (i % 100) as f64).collect();
        let q = Queryable::new(vals, &budget, &noise);
        let avg = q.noisy_average_in(1.0, 100.0, 200.0, |&v| v).unwrap();
        assert!((avg - 149.5).abs() < 2.0, "avg {avg}");
    }

    #[test]
    fn noisy_median_finds_central_value() {
        let budget = Accountant::new(1000.0);
        let noise = NoiseSource::seeded(37);
        let vals: Vec<f64> = (0..999).map(|i| i as f64).collect();
        let q = Queryable::new(vals, &budget, &noise);
        let med = q.noisy_median(2.0, 0.0, 1000.0, 100, |&v| v).unwrap();
        assert!((med - 500.0).abs() < 60.0, "median {med}");
    }

    #[test]
    fn noisy_sum_vector_charges_once_for_all_dims() {
        let budget = Accountant::new(1.0);
        let noise = NoiseSource::seeded(41);
        let q = Queryable::new(vec![[1.0f64, 2.0, 3.0]; 10], &budget, &noise);
        let s = q.noisy_sum_vector(0.5, 3, 10.0, |v| v.to_vec()).unwrap();
        assert_eq!(s.len(), 3);
        // Whole-vector release cost exactly 0.5.
        assert!((budget.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_epsilon_costs_nothing() {
        let (acct, q) = setup(1.0);
        assert!(q.noisy_count(-1.0).is_err());
        assert!(q.noisy_count(0.0).is_err());
        assert_eq!(acct.spent(), 0.0);
    }

    #[test]
    fn invalid_median_range_costs_nothing() {
        let (acct, q) = setup(1.0);
        assert!(q
            .noisy_median(0.5, 10.0, 0.0, 10, |p| p.len as f64)
            .is_err());
        assert!(q.noisy_median(0.5, 0.0, 10.0, 0, |p| p.len as f64).is_err());
        assert_eq!(acct.spent(), 0.0);
    }

    #[test]
    fn new_shared_charges_every_budget() {
        let global = Accountant::new(1.0);
        let personal = Accountant::new(0.3);
        let noise = NoiseSource::seeded(43);
        let records = std::sync::Arc::new(vec![1u8; 100]);
        let q = Queryable::new_shared(records, &[&global, &personal], &noise);
        q.noisy_count(0.2).unwrap();
        assert!((global.spent() - 0.2).abs() < 1e-12);
        assert!((personal.spent() - 0.2).abs() < 1e-12);
        // The personal cap binds first; the failed charge refunds both.
        assert!(q.noisy_count(0.2).is_err());
        assert!((global.spent() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one budget")]
    fn new_shared_requires_a_budget() {
        let noise = NoiseSource::seeded(44);
        let _ = Queryable::<u8>::new_shared(std::sync::Arc::new(vec![]), &[], &noise);
    }

    #[test]
    fn most_common_key_picks_the_mode() {
        let budget = Accountant::new(100.0);
        let noise = NoiseSource::seeded(45);
        let mut data = vec![80u16; 500];
        data.extend(vec![443u16; 100]);
        data.extend(vec![22u16; 50]);
        let q = Queryable::new(data, &budget, &noise);
        let candidates = [22u16, 80, 443, 8080];
        let idx = q.most_common_key(5.0, &candidates, |&p| p).unwrap();
        assert_eq!(candidates[idx], 80);
        // Cost: one ε, not one per candidate.
        assert!((budget.spent() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn most_common_key_rejects_empty_candidates() {
        let budget = Accountant::new(1.0);
        let noise = NoiseSource::seeded(46);
        let q = Queryable::new(vec![1u8], &budget, &noise);
        assert!(matches!(
            q.most_common_key(1.0, &[] as &[u8], |&x| x),
            Err(Error::EmptyCandidates)
        ));
        assert_eq!(budget.spent(), 0.0);
    }

    #[test]
    fn debug_output_hides_data() {
        let (_, q) = setup(1.0);
        let s = format!("{q:?}");
        assert!(!s.contains("2000"), "debug leaked record data: {s}");
        assert!(s.contains("stability"));
    }

    #[test]
    fn partition_rejects_duplicate_keys() {
        let (acct, q) = setup(1.0);
        let ports: Vec<u16> = vec![80, 443, 80];
        assert!(matches!(
            q.partition(&ports, |p| p.port),
            Err(Error::DuplicatePartitionKeys)
        ));
        assert_eq!(acct.spent(), 0.0);
    }

    #[test]
    fn concat_with_an_empty_side_reuses_the_existing_buffer() {
        let a_budget = Accountant::new(1.0);
        let b_budget = Accountant::new(1.0);
        let noise = NoiseSource::seeded(51);
        let a = Queryable::new(vec![7u8; 64], &a_budget, &noise);
        let empty = Queryable::new(Vec::<u8>::new(), &b_budget, &noise);
        let src = a.records();
        let both = a.concat(&empty);
        match &both.data {
            Data::Ready(buf) => {
                assert!(buf.ptr_eq(&src), "non-empty side must be reused");
            }
            Data::Lazy(_) => panic!("concat output should be materialized"),
        }
        // The empty side's budget is still charged: a neighboring dataset
        // of the empty input could hold a record.
        both.noisy_count(0.5).unwrap();
        assert!((a_budget.spent() - 0.5).abs() < 1e-12);
        assert!((b_budget.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fused_aggregations_stream_without_materializing() {
        let acct = Accountant::new(10.0);
        let sink = Arc::new(dpnet_obs::MemorySink::new());
        acct.set_sink(Some(sink.clone()));
        let noise = NoiseSource::seeded(53);
        let q = Queryable::new((0..10_000u32).collect::<Vec<_>>(), &acct, &noise);
        let chain = q
            .filter(|v| v % 2 == 0)
            .map(|&v| u64::from(v))
            .filter(|&v| v > 10);
        let plans = || {
            sink.events()
                .iter()
                .filter(|e| matches!(e, dpnet_obs::Event::Plan(_)))
                .count()
        };
        assert_eq!(plans(), 0, "declaring transforms must not materialize");
        chain.noisy_count(0.1).unwrap();
        chain.noisy_sum_clamped(0.1, 100.0, |&v| v as f64).unwrap();
        chain
            .noisy_median(0.1, 0.0, 10_000.0, 16, |&v| v as f64)
            .unwrap();
        assert_eq!(plans(), 0, "fused aggregations stream; no plan forced");
        // A barrier that genuinely needs the buffer (group_by) forces once…
        chain.group_by(|&v| v % 7).noisy_count(0.1).unwrap();
        assert_eq!(plans(), 1, "group_by forces the plan");
        // …and later fused aggregations read the memo, not the chain.
        chain.noisy_count(0.1).unwrap();
        assert_eq!(plans(), 1, "memoized plan is reused");
        let fused = sink
            .events()
            .iter()
            .find_map(|e| match e {
                dpnet_obs::Event::Plan(p) => Some(p.fused_stages),
                _ => None,
            })
            .unwrap();
        assert_eq!(fused, 3, "filter → map → filter fuse into one pass");
    }

    #[test]
    fn fused_count_matches_materialized_count_bitwise() {
        let run = |force_first: bool| {
            let acct = Accountant::new(10.0);
            let noise = NoiseSource::seeded(57);
            let q = Queryable::new((0..5000u32).collect::<Vec<_>>(), &acct, &noise);
            let chain = q.filter(|v| v % 5 == 0).map(|&v| v * 3);
            let chain = if force_first {
                chain.collect_protected()
            } else {
                chain
            };
            (chain.noisy_count(0.5).unwrap().to_bits(), acct.spent())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn partition_noisy_counts_matches_the_unbatched_form_bitwise() {
        let batched = {
            let (acct, q) = setup(10.0);
            let ports: Vec<u16> = vec![80, 443, 22];
            let counts = q
                .partition_noisy_counts(&ports, |p| p.port, 0.3)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>();
            (counts, acct.spent())
        };
        let unbatched = {
            let (acct, q) = setup(10.0);
            let ports: Vec<u16> = vec![80, 443, 22];
            let parts = q.partition(&ports, |p| p.port).unwrap();
            let counts = parts
                .iter()
                .map(|p| p.noisy_count(0.3).unwrap().to_bits())
                .collect::<Vec<_>>();
            (counts, acct.spent())
        };
        assert_eq!(batched, unbatched);
    }

    #[test]
    fn partition_noisy_counts_rejects_duplicates_and_respects_budget() {
        let (acct, q) = setup(1.0);
        assert!(matches!(
            q.partition_noisy_counts(&[80u16, 80], |p| p.port, 0.1),
            Err(Error::DuplicatePartitionKeys)
        ));
        assert_eq!(acct.spent(), 0.0);
        // Parallel composition: 3 parts at 0.3 cost max = 0.3, like the
        // unbatched form.
        q.partition_noisy_counts(&[80u16, 443, 22], |p| p.port, 0.3)
            .unwrap();
        assert!((acct.spent() - 0.3).abs() < 1e-12);
        // A fan-out that cannot fit fails on its first part and rolls that
        // part's spend back; the earlier release stays charged.
        assert!(q
            .partition_noisy_counts(&[80u16, 443, 22], |p| p.port, 0.8)
            .is_err());
        assert!((acct.spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn collect_protected_matches_the_lazy_release_and_spends_nothing() {
        let (acct_lazy, q_lazy) = setup(10.0);
        let lazy = q_lazy.filter(|p| p.port == 80).map(|p| p.len);
        let (acct_eager, q_eager) = setup(10.0);
        let eager = q_eager
            .filter(|p| p.port == 80)
            .map(|p| p.len)
            .collect_protected();
        assert!(matches!(eager.data, Data::Ready(_)));
        assert_eq!(acct_eager.spent(), 0.0, "materialization is not a release");
        assert_eq!(eager.stability(), lazy.stability());
        let a = lazy.noisy_count(0.5).unwrap();
        let b = eager.noisy_count(0.5).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(acct_lazy.spent(), acct_eager.spent());
    }

    #[test]
    fn pool_ctx_releases_match_sequential_bitwise() {
        let run = |ctx: ExecCtx| {
            let acct = Accountant::new(10.0);
            let noise = NoiseSource::seeded(59);
            let q = Queryable::new((0..5000u32).collect::<Vec<_>>(), &acct, &noise).with_ctx(ctx);
            let c = q
                .filter(|v| v % 3 == 0)
                .map(|&v| u64::from(v) * 2)
                .noisy_count(0.5)
                .unwrap();
            let m = q
                .noisy_median(0.5, 0.0, 10_000.0, 32, |&v| f64::from(v))
                .unwrap();
            (c.to_bits(), m.to_bits(), acct.spent())
        };
        let seq = run(ExecCtx::Sequential);
        let pool = ExecPool::new(4).unwrap().with_chunk_size(256);
        assert_eq!(run(ExecCtx::pool(&pool)), seq);
    }

    #[test]
    fn explain_snapshots_lineage_without_side_effects() {
        let (acct, q) = setup(10.0);
        let lazy = q.filter(|p| p.port == 80);
        let tree = lazy.explain();
        assert_eq!(tree.pending_fused, 1);
        assert!(!tree.materialized);
        assert_eq!(tree.lineage.op, "filter");
        assert!(tree.lineage.fused);
        assert_eq!(tree.lineage.inputs[0].op, "source");

        let shaped = lazy.group_by(|p| p.src);
        let tree = shaped.explain();
        assert_eq!(tree.stability, 2.0);
        assert_eq!(tree.pending_fused, 0);
        assert!(tree.materialized);
        assert_eq!(tree.lineage.op, "group_by");
        assert_eq!(tree.lineage.inputs[0].op, "filter");
        // Predicting a pending noisy_count(0.1): stability 2 × 0.1 at root.
        let predicted = tree.predict(0.1);
        assert_eq!(predicted.len(), 1);
        assert_eq!(predicted[0].0, "root");
        assert!((predicted[0].1 - 0.2).abs() < 1e-12);
        // Explain charged nothing.
        assert!(acct.spent().abs() < 1e-12);
    }

    #[test]
    fn explain_lineage_tracks_partitions_and_combinators() {
        let (_, q) = setup(10.0);
        let parts = q.partition(&[80u16, 443], |p| p.port).unwrap();
        let tree = parts[1].explain();
        assert_eq!(tree.lineage.op, "partition");
        assert_eq!(tree.lineage.detail.as_deref(), Some("part[1] of 2"));
        assert_eq!(tree.charge.path(), "part[1]/scale(x1)/root");

        let joined = parts[0].concat(&parts[1]);
        let tree = joined.explain();
        assert_eq!(tree.lineage.op, "concat");
        assert_eq!(tree.lineage.inputs.len(), 2);
        assert!(matches!(
            tree.charge,
            crate::explain::ChargeTree::Combined(_)
        ));
    }

    #[test]
    fn installed_recorder_captures_real_partition_charges() {
        let _guard = crate::explain::test_global_guard();
        let acct = Accountant::new(10.0);
        let noise = NoiseSource::seeded(7);
        let q = Queryable::new(trace(), &acct, &noise);
        // select_many(7, ..) gives a scale(x7) edge no other test produces,
        // so this test's records are identifiable even though the recorder
        // is process-global and other tests may charge concurrently.
        let expanded = q.select_many(7, |p| vec![p.port]).unwrap();
        let parts = expanded.partition(&[80u16, 443], |p| *p).unwrap();

        let rec = Arc::new(crate::explain::ExplainRecorder::new());
        crate::explain::install_explain_recorder(rec.clone());
        parts[0].noisy_count(0.05).unwrap();
        parts[1].noisy_count(0.05).unwrap();
        crate::explain::uninstall_explain_recorder();

        let report = rec.report();
        let agg = report
            .aggregations
            .iter()
            .find(|a| a.operator == "noisy_count" && a.path == "part[*]/scale(x7)/root")
            .expect("aggregation recorded");
        assert_eq!(agg.calls, 2);
        assert!((agg.requested_eps - 0.1).abs() < 1e-12);
        // Part 0 raised the max by 0.05 (×7 at the root); part 1 was
        // absorbed. Predicted per-path ε equals what the accountant saw.
        assert!((agg.predicted_eps - 0.35).abs() < 1e-12);
        assert!((acct.spent() - 0.35).abs() < 1e-12);
        let by_full: std::collections::BTreeMap<&str, f64> = report
            .full_paths
            .iter()
            .map(|p| (p.path.as_str(), p.predicted_eps))
            .collect();
        assert!((by_full["part[0]/scale(x7)/root"] - 0.35).abs() < 1e-12);
        assert!(by_full["part[1]/scale(x7)/root"].abs() < 1e-12);
    }
}
