//! # pinq — an ε-differentially-private query engine
//!
//! A Rust implementation of the analysis platform used by *McSherry &
//! Mahajan, "Differentially-Private Network Trace Analysis" (SIGCOMM 2010)*:
//! **Privacy Integrated Queries** (PINQ, McSherry SIGMOD 2009).
//!
//! The engine never hands raw records to the analyst. Instead, the data
//! owner wraps records in a [`Queryable`], assigns a privacy budget through
//! an [`Accountant`], and the analyst composes declarative transformations
//! and noisy aggregations:
//!
//! * **Transformations** — [`Queryable::filter`], [`Queryable::map`],
//!   [`Queryable::select_many`], [`Queryable::group_by`],
//!   [`Queryable::distinct`], [`Queryable::join`], [`Queryable::concat`],
//!   [`Queryable::intersect`], [`Queryable::partition`] — return new
//!   protected datasets and track *stability*, the factor by which one
//!   source record's influence may have been amplified.
//! * **Aggregations** — [`Queryable::noisy_count`], [`Queryable::noisy_sum`],
//!   [`Queryable::noisy_average`], [`Queryable::noisy_median`] — release a
//!   number after adding noise calibrated per the paper's Table 1, charging
//!   `stability × ε` against the budget.
//!
//! Two composition rules power privacy-efficient analysis:
//!
//! * **Sequential composition** ([`budget`]): costs of successive queries add.
//! * **Parallel composition** (`Partition`): queries on disjoint parts of a
//!   [`Queryable::partition`] cost only their maximum.
//!
//! ## Guarantee
//!
//! A randomized computation `M` gives ε-differential privacy when for all
//! datasets `A`, `B` and output sets `S`:
//! `Pr[M(A) ∈ S] ≤ Pr[M(B) ∈ S] · exp(ε·|A ⊖ B|)`.
//! Informally: the presence or absence of any single record is nearly
//! impossible to infer from released outputs, regardless of auxiliary
//! information or collusion among analysts.
//!
//! ## Example
//!
//! ```
//! use pinq::{Accountant, NoiseSource, Queryable};
//!
//! let budget = Accountant::new(1.0);           // data-owner policy
//! let noise = NoiseSource::seeded(0xfeed);
//! let data = Queryable::new((0..1000u32).collect::<Vec<_>>(), &budget, &noise);
//!
//! let evens = data.filter(|x| x % 2 == 0).noisy_count(0.1).unwrap();
//! assert!((evens - 500.0).abs() < 100.0);      // ±√2/ε expected error
//! assert_eq!(budget.remaining(), 0.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregates;
pub mod error;
pub mod exec;
pub mod explain;
pub mod kernel;
pub mod mechanisms;
pub mod parallel;
mod plan;
pub mod policy;
pub mod queryable;
pub mod rng;
mod shard;
pub mod types;

pub use kernel::budget;

pub use budget::{Accountant, OperatorTotal, SpendEvent, DEFAULT_LOG_CAPACITY};
pub use error::{Error, Result};
pub use exec::{ExecCtx, ExecPool};
pub use explain::{
    install_explain_recorder, uninstall_explain_recorder, ChargeTree, ExplainRecorder,
    ExplainReport, ExplainTree, Overlay,
};
pub use policy::{Session, SessionManager, SessionSpend, TimedRelease};
pub use queryable::Queryable;
pub use rng::NoiseSource;
pub use types::{Group, JoinGroup};
