//! Noisy aggregate computations.
//!
//! These free functions implement the statistics behind the engine's
//! aggregations, already calibrated for sensitivity but *without* budget
//! accounting — [`crate::queryable::Queryable`] charges the budget and then
//! delegates here. Keeping them separate makes the math independently
//! testable and reusable (the toolkit's estimators call some of them
//! directly on already-released values).
//!
//! Calibration (paper Table 1):
//!
//! | aggregate | mechanism | noise std |
//! |---|---|---|
//! | count | `n + Lap(1/ε)` | `√2/ε` |
//! | sum (values clamped to `[-1,1]`) | `Σ + Lap(1/ε)` | `√2/ε` |
//! | average (values clamped to `[-1,1]`) | `mean + Lap(2/(εn))` | `√8/(εn)` |
//! | median | exponential mechanism over candidate grid | splits off by `≈√2/ε` ranks |

use crate::error::{check_epsilon, Error, Result};
use crate::mechanisms::{exponential_mechanism_index, geometric_noise, laplace_noise};
use crate::rng::NoiseSource;

/// Noisy count: `n + Lap(1/ε)`.
pub fn noisy_count(noise: &NoiseSource, n: usize, eps: f64) -> Result<f64> {
    check_epsilon(eps)?;
    Ok(n as f64 + laplace_noise(noise, 1.0 / eps))
}

/// Noisy integer count via the geometric mechanism: `n + Geom(e^{-ε})`.
/// Clamped below at zero, since a negative count is never plausible and the
/// clamp is a post-processing step that cannot harm privacy.
pub fn noisy_count_int(noise: &NoiseSource, n: usize, eps: f64) -> Result<i64> {
    check_epsilon(eps)?;
    Ok((n as i64 + geometric_noise(noise, eps)).max(0))
}

/// Clamp a value into `[lo, hi]`.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.min(hi).max(lo)
}

/// Noisy sum of values clamped to `[-bound, bound]`:
/// `Σ clamp(x) + Lap(bound/ε)`. With `bound = 1` this is PINQ's `NoisySum`.
pub fn noisy_sum<'a>(
    noise: &NoiseSource,
    values: impl Iterator<Item = f64> + 'a,
    bound: f64,
    eps: f64,
) -> Result<f64> {
    check_epsilon(eps)?;
    if !(bound.is_finite() && bound > 0.0) {
        return Err(Error::InvalidRange {
            lo: -bound,
            hi: bound,
        });
    }
    let total: f64 = values.map(|v| clamp(v, -bound, bound)).sum();
    Ok(total + laplace_noise(noise, bound / eps))
}

/// Noisy average of values clamped to `[-1, 1]`:
/// `mean + Lap(2/(εn))` — noise std `√8/(εn)` as in Table 1.
///
/// An empty input yields pure noise at scale `2/ε` (as if `n = 1`), so that
/// emptiness itself is not revealed exactly.
pub fn noisy_average<'a>(
    noise: &NoiseSource,
    values: impl Iterator<Item = f64> + 'a,
    eps: f64,
) -> Result<f64> {
    check_epsilon(eps)?;
    let mut n = 0usize;
    let mut total = 0.0;
    for v in values {
        n += 1;
        total += clamp(v, -1.0, 1.0);
    }
    let denom = n.max(1) as f64;
    let mean = total / denom;
    Ok(mean + laplace_noise(noise, 2.0 / (eps * denom)))
}

/// Noisy vector sum via the vector Laplace mechanism.
///
/// Each record contributes a `dims`-dimensional vector whose L1 norm is
/// clamped to `l1_bound` (vectors over the bound are scaled down onto the
/// ball, preserving direction). The query's L1 sensitivity is then
/// `l1_bound`, and adding independent `Lap(l1_bound/ε)` noise to every
/// coordinate gives ε-differential privacy *for the whole vector at once* —
/// the aggregation PINQ's k-means uses to move all `d` coordinates of a
/// centroid for a single ε charge.
pub fn noisy_vector_sum<'a>(
    noise: &NoiseSource,
    vectors: impl Iterator<Item = Vec<f64>> + 'a,
    dims: usize,
    l1_bound: f64,
    eps: f64,
) -> Result<Vec<f64>> {
    check_epsilon(eps)?;
    if !(l1_bound.is_finite() && l1_bound > 0.0) {
        return Err(Error::InvalidRange {
            lo: 0.0,
            hi: l1_bound,
        });
    }
    let mut total = vec![0.0f64; dims];
    for v in vectors {
        // Non-finite coordinates (NaN, ±∞) are treated as 0: a hostile
        // record must not be able to poison the release — a NaN output
        // would itself reveal the record's presence.
        let sanitized = |x: &f64| if x.is_finite() { *x } else { 0.0 };
        let norm: f64 = v.iter().take(dims).map(|x| sanitized(x).abs()).sum();
        let scale = if norm > l1_bound {
            l1_bound / norm
        } else {
            1.0
        };
        for (t, x) in total.iter_mut().zip(v.iter()) {
            *t += sanitized(x) * scale;
        }
    }
    for t in total.iter_mut() {
        *t += laplace_noise(noise, l1_bound / eps);
    }
    Ok(total)
}

/// Noisy median via the exponential mechanism.
///
/// Candidates are an evenly spaced grid of `buckets + 1` points over
/// `[lo, hi]`. Each candidate `c` is scored by `-|#{x < c} − n/2|`, a
/// sensitivity-1 score (adding/removing one record shifts any rank count by
/// at most one). The selected candidate splits the data into halves whose
/// sizes differ by `O(1/ε)` with high probability.
pub fn noisy_median(
    noise: &NoiseSource,
    values: &[f64],
    lo: f64,
    hi: f64,
    buckets: usize,
    eps: f64,
) -> Result<f64> {
    check_epsilon(eps)?;
    if lo >= hi || !lo.is_finite() || !hi.is_finite() {
        return Err(Error::InvalidRange { lo, hi });
    }
    if buckets == 0 {
        return Err(Error::EmptyCandidates);
    }
    let n = values.len() as f64;
    let mut sorted: Vec<f64> = values.iter().map(|&v| clamp(v, lo, hi)).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("clamped values are comparable"));
    let step = (hi - lo) / buckets as f64;
    let candidates: Vec<f64> = (0..=buckets).map(|i| lo + i as f64 * step).collect();
    let scores: Vec<f64> = candidates
        .iter()
        .map(|&c| {
            let below = sorted.partition_point(|&v| v < c) as f64;
            -(below - n / 2.0).abs()
        })
        .collect();
    let idx = exponential_mechanism_index(noise, &scores, eps, 1.0)?;
    Ok(candidates[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_noise_has_expected_spread() {
        let src = NoiseSource::seeded(71);
        let trials = 50_000;
        let eps = 0.1;
        let xs: Vec<f64> = (0..trials)
            .map(|_| noisy_count(&src, 1000, eps).unwrap() - 1000.0)
            .collect();
        let mean = xs.iter().sum::<f64>() / trials as f64;
        let std = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / trials as f64).sqrt();
        let expected = std::f64::consts::SQRT_2 / eps; // Table 1
        assert!(mean.abs() < 0.5);
        assert!(
            (std - expected).abs() / expected < 0.05,
            "{std} vs {expected}"
        );
    }

    #[test]
    fn paper_example_error_scale() {
        // §2.3: at eps=0.1, "the expected error for this analysis is ±10".
        // Mean |Lap(1/0.1)| = 10.
        let src = NoiseSource::seeded(73);
        let trials = 50_000;
        let mae: f64 = (0..trials)
            .map(|_| (noisy_count(&src, 120, 0.1).unwrap() - 120.0).abs())
            .sum::<f64>()
            / trials as f64;
        assert!((mae - 10.0).abs() < 0.5, "mean abs error {mae}");
    }

    #[test]
    fn sum_clamps_outliers() {
        let src = NoiseSource::seeded(79);
        // One adversarial record of 1e9 must contribute at most `bound`.
        let vals = [0.5, 0.5, 1e9];
        let mut total = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            total += noisy_sum(&src, vals.iter().cloned(), 1.0, 5.0).unwrap();
        }
        let mean = total / trials as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn sum_with_larger_bound_scales_noise() {
        let src = NoiseSource::seeded(83);
        let trials = 50_000;
        let eps = 1.0;
        let bound = 10.0;
        let xs: Vec<f64> = (0..trials)
            .map(|_| noisy_sum(&src, std::iter::empty(), bound, eps).unwrap())
            .collect();
        let std = (xs.iter().map(|x| x * x).sum::<f64>() / trials as f64).sqrt();
        let expected = std::f64::consts::SQRT_2 * bound / eps;
        assert!((std - expected).abs() / expected < 0.05);
    }

    #[test]
    fn average_noise_shrinks_with_n() {
        let src = NoiseSource::seeded(89);
        let eps = 1.0;
        let small: Vec<f64> = vec![0.0; 10];
        let large: Vec<f64> = vec![0.0; 10_000];
        let spread = |vals: &[f64]| {
            let trials = 5000;
            (0..trials)
                .map(|_| {
                    noisy_average(&src, vals.iter().cloned(), eps)
                        .unwrap()
                        .abs()
                })
                .sum::<f64>()
                / trials as f64
        };
        let s_small = spread(&small);
        let s_large = spread(&large);
        assert!(
            s_small > 100.0 * s_large,
            "small-n spread {s_small} vs large-n {s_large}"
        );
    }

    #[test]
    fn average_of_empty_input_is_pure_noise() {
        let src = NoiseSource::seeded(97);
        let v = noisy_average(&src, std::iter::empty(), 1.0).unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn median_lands_near_true_median() {
        let src = NoiseSource::seeded(101);
        let values: Vec<f64> = (0..1001).map(|i| i as f64).collect(); // median 500
        let mut total = 0.0;
        let trials = 200;
        for _ in 0..trials {
            total += noisy_median(&src, &values, 0.0, 1000.0, 200, 1.0).unwrap();
        }
        let mean = total / trials as f64;
        assert!((mean - 500.0).abs() < 25.0, "median estimate {mean}");
    }

    #[test]
    fn median_split_quality_matches_table1() {
        // Table 1: the returned value partitions the input into sets whose
        // sizes differ by approximately sqrt(2)/eps ranks.
        let src = NoiseSource::seeded(103);
        let values: Vec<f64> = (0..2000).map(|i| i as f64 / 2.0).collect();
        let eps = 0.5;
        let trials = 400;
        let mut rank_gap = 0.0;
        for _ in 0..trials {
            let m = noisy_median(&src, &values, 0.0, 1000.0, 500, eps).unwrap();
            let below = values.iter().filter(|&&v| v < m).count() as f64;
            rank_gap += (below - 1000.0).abs();
        }
        rank_gap /= trials as f64;
        // Loose check: same order of magnitude as sqrt(2)/eps ≈ 2.8 ranks
        // (grid discretization adds up to one grid cell = 4 ranks here).
        assert!(rank_gap < 30.0, "rank gap {rank_gap}");
    }

    #[test]
    fn median_rejects_bad_ranges() {
        let src = NoiseSource::seeded(107);
        assert!(noisy_median(&src, &[1.0], 5.0, 1.0, 10, 1.0).is_err());
        assert!(noisy_median(&src, &[1.0], 0.0, 1.0, 0, 1.0).is_err());
    }

    #[test]
    fn vector_sum_clamps_onto_l1_ball() {
        let src = NoiseSource::seeded(113);
        // One record with L1 norm 10 clamped to bound 1: contributes its
        // direction scaled to norm 1.
        let vecs = [vec![8.0, 2.0]];
        let trials = 3000;
        let mut mean = [0.0f64; 2];
        for _ in 0..trials {
            let s = noisy_vector_sum(&src, vecs.iter().cloned(), 2, 1.0, 5.0).unwrap();
            mean[0] += s[0];
            mean[1] += s[1];
        }
        mean[0] /= trials as f64;
        mean[1] /= trials as f64;
        assert!((mean[0] - 0.8).abs() < 0.05, "x {mean:?}");
        assert!((mean[1] - 0.2).abs() < 0.05, "y {mean:?}");
    }

    #[test]
    fn vector_sum_noise_scales_with_bound() {
        let src = NoiseSource::seeded(127);
        let trials = 20_000;
        let eps = 1.0;
        let bound = 4.0;
        let mut sq = 0.0;
        for _ in 0..trials {
            let s = noisy_vector_sum(&src, std::iter::empty(), 1, bound, eps).unwrap();
            sq += s[0] * s[0];
        }
        let std = (sq / trials as f64).sqrt();
        let expected = std::f64::consts::SQRT_2 * bound / eps;
        assert!(
            (std - expected).abs() / expected < 0.05,
            "{std} vs {expected}"
        );
    }

    #[test]
    fn vector_sum_rejects_bad_bound() {
        let src = NoiseSource::seeded(131);
        assert!(noisy_vector_sum(&src, std::iter::empty(), 2, 0.0, 1.0).is_err());
        assert!(noisy_vector_sum(&src, std::iter::empty(), 2, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn adversarial_values_cannot_poison_sums() {
        // NaN and infinities clamp into the bound instead of propagating:
        // a single hostile record must not be able to make every future
        // release NaN (which would itself leak that the record exists).
        let src = NoiseSource::seeded(137);
        let vals = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.25];
        for _ in 0..100 {
            let s = noisy_sum(&src, vals.iter().cloned(), 1.0, 1.0).unwrap();
            assert!(s.is_finite(), "sum leaked non-finite value: {s}");
            // |clamped sum| ≤ 3.25 plus noise.
            assert!(s.abs() < 3.25 + 40.0);
        }
        let a = noisy_average(&src, vals.iter().cloned(), 1.0).unwrap();
        assert!(a.is_finite());
    }

    #[test]
    fn adversarial_values_cannot_poison_vector_sums() {
        let src = NoiseSource::seeded(139);
        let vecs = vec![vec![f64::NAN, 1.0], vec![f64::INFINITY, -1.0]];
        let s = noisy_vector_sum(&src, vecs.into_iter(), 2, 1.0, 1.0).unwrap();
        assert!(s.iter().all(|x| x.is_finite()), "vector sum leaked: {s:?}");
    }

    #[test]
    fn noisy_count_int_is_non_negative() {
        let src = NoiseSource::seeded(109);
        for _ in 0..10_000 {
            assert!(noisy_count_int(&src, 0, 0.1).unwrap() >= 0);
        }
    }
}
