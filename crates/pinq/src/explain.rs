//! EXPLAIN / EXPLAIN ANALYZE: plan and privacy-cost introspection.
//!
//! The paper's central contract is that an analysis' privacy cost is
//! determined *structurally* — stability multipliers, sequential
//! composition, max-of-parts partitions — before any data is touched
//! (paper §2, Table 1). This module makes that structure a first-class,
//! inspectable artifact:
//!
//! * [`Queryable::explain`](crate::Queryable::explain) snapshots one
//!   pipeline into an [`ExplainTree`] — its operator lineage (with fusion
//!   boundaries and the stability multiplier at each edge), the charge DAG
//!   as structured [`ChargeTree`] nodes (what
//!   `ChargeNode::describe` narrates as a string), and the per-root ε a
//!   pending aggregation *would* charge. Side-effect-free: nothing is
//!   spent, nothing materializes.
//! * An [`ExplainRecorder`], installed process-wide like the span
//!   profiler, watches a real run and folds every aggregation's charge
//!   into an [`ExplainReport`]: per-aggregation and per-charge-path
//!   predicted ε. The per-root deltas are captured *inside* the charge
//!   walk, under the partition-ledger lock, so they agree exactly with
//!   [`Accountant::path_totals`](crate::Accountant::path_totals) even when
//!   pool workers charge concurrently.
//! * An "analyze" [`Overlay`] layers measured reality — net ε per path
//!   from the accountant ledger, span self-times, plan materialization
//!   counts — onto the same report.
//!
//! All three render as a text tree, Graphviz DOT, and JSON. Everything
//! here is privacy metadata (operator names, stability factors, ε
//! arithmetic, timings): safe to show an analyst, and exactly what a data
//! owner needs to audit a mediated session.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------
// Structured charge DAG
// ---------------------------------------------------------------------

/// A structured snapshot of the charge DAG from one queryable to its
/// budget root(s) — `ChargeNode::describe` promoted from a debug string to
/// nodes, with the live budget / ledger numbers at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum ChargeTree {
    /// A budget root: charges land on an [`crate::Accountant`].
    Root {
        /// ε spent on the accountant at snapshot time.
        spent: f64,
        /// The accountant's total budget.
        total: f64,
    },
    /// Charges are multiplied by `factor` on the way to `child`.
    Scaled {
        /// The stability factor applied across this edge.
        factor: f64,
        /// The node charges are forwarded to.
        child: Box<ChargeTree>,
    },
    /// Charges are forwarded, unscaled, to every child (`join`, `concat`,
    /// `intersect`, multi-budget views).
    Combined(Vec<ChargeTree>),
    /// Charges flow through a partition ledger: only increases of the
    /// maximum part spend reach `child` (parallel composition).
    Part {
        /// This part's index within the partition.
        index: usize,
        /// The total number of parts sharing the ledger.
        parts: usize,
        /// This part's cumulative spend at snapshot time.
        part_spent: f64,
        /// The maximum part spend at snapshot time.
        max_spent: f64,
        /// The node max-increases are forwarded to.
        child: Box<ChargeTree>,
    },
}

impl ChargeTree {
    /// The static charge path this tree narrates — byte-identical to what
    /// `ChargeNode::describe` renders for the node it was snapshot from.
    pub fn path(&self) -> String {
        match self {
            ChargeTree::Root { .. } => "root".to_string(),
            ChargeTree::Scaled { factor, child } => format!("scale(x{factor})/{}", child.path()),
            ChargeTree::Combined(children) => {
                let inner: Vec<String> = children
                    .iter()
                    .enumerate()
                    .map(|(i, c)| format!("in[{i}]:{}", c.path()))
                    .collect();
                format!("({})", inner.join("+"))
            }
            ChargeTree::Part { index, child, .. } => format!("part[{index}]/{}", child.path()),
        }
    }

    /// Predict the per-root `(full_path, ε)` deltas a charge of `eps`
    /// through this node would apply, given the spends captured in the
    /// snapshot. Pure: the snapshot is compiled into a kernel
    /// [`crate::kernel::model::KernelState`] and walked with the kernel's
    /// own predict arithmetic — the same formulas live charges use, so a
    /// static `EXPLAIN` cannot drift from the engine.
    pub fn predict(&self, eps: f64) -> Vec<(String, f64)> {
        crate::kernel::predict_tree(self, eps)
    }

    fn render_text_into(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            ChargeTree::Root { spent, total } => {
                out.push_str(&format!("{pad}root  [spent {spent:.6} of {total:.6}]\n"));
            }
            ChargeTree::Scaled { factor, child } => {
                out.push_str(&format!("{pad}scale(x{factor})\n"));
                child.render_text_into(indent + 1, out);
            }
            ChargeTree::Combined(children) => {
                out.push_str(&format!("{pad}combined ({} inputs)\n", children.len()));
                for (i, c) in children.iter().enumerate() {
                    out.push_str(&format!("{pad}  in[{i}]:\n"));
                    c.render_text_into(indent + 2, out);
                }
            }
            ChargeTree::Part {
                index,
                parts,
                part_spent,
                max_spent,
                child,
            } => {
                out.push_str(&format!(
                    "{pad}part[{index}] of {parts}  [part ε {part_spent:.6}, max ε {max_spent:.6}]\n"
                ));
                child.render_text_into(indent + 1, out);
            }
        }
    }

    fn to_json_value(&self) -> String {
        use dpnet_obs::json::number;
        match self {
            ChargeTree::Root { spent, total } => format!(
                "{{\"kind\":\"root\",\"spent\":{},\"total\":{}}}",
                number(*spent),
                number(*total)
            ),
            ChargeTree::Scaled { factor, child } => format!(
                "{{\"kind\":\"scale\",\"factor\":{},\"child\":{}}}",
                number(*factor),
                child.to_json_value()
            ),
            ChargeTree::Combined(children) => {
                let inner: Vec<String> = children.iter().map(|c| c.to_json_value()).collect();
                format!("{{\"kind\":\"combined\",\"inputs\":[{}]}}", inner.join(","))
            }
            ChargeTree::Part {
                index,
                parts,
                part_spent,
                max_spent,
                child,
            } => format!(
                "{{\"kind\":\"part\",\"index\":{index},\"parts\":{parts},\"part_eps\":{},\"max_eps\":{},\"child\":{}}}",
                number(*part_spent),
                number(*max_spent),
                child.to_json_value()
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Operator lineage
// ---------------------------------------------------------------------

/// One operator in a queryable's lineage: how the handle the analyst holds
/// was derived. Pure plan metadata — never data.
#[derive(Debug)]
pub struct OpNode {
    /// Operator name (`"source"`, `"filter"`, `"group_by"`, …).
    pub op: &'static str,
    /// Cumulative stability *after* this operator.
    pub stability: f64,
    /// Whether the operator fuses onto the pending lazy plan instead of
    /// materializing (a fusion boundary sits between a fused node and its
    /// first non-fused descendant).
    pub fused: bool,
    /// Operator-specific annotation (e.g. `"bound=4"` for `select_many`).
    pub detail: Option<String>,
    /// The operator's input lineage(s); empty for `source`.
    pub inputs: Vec<Arc<OpNode>>,
}

impl OpNode {
    /// A source node: the data owner's `Queryable::new`.
    pub(crate) fn source(detail: Option<String>) -> Arc<OpNode> {
        Arc::new(OpNode {
            op: "source",
            stability: 1.0,
            fused: false,
            detail,
            inputs: Vec::new(),
        })
    }

    /// A derived node with one input.
    pub(crate) fn derived(
        op: &'static str,
        stability: f64,
        fused: bool,
        detail: Option<String>,
        input: Arc<OpNode>,
    ) -> Arc<OpNode> {
        Arc::new(OpNode {
            op,
            stability,
            fused,
            detail,
            inputs: vec![input],
        })
    }

    /// A derived node combining two inputs (`join`, `concat`, `intersect`).
    pub(crate) fn combined(op: &'static str, left: Arc<OpNode>, right: Arc<OpNode>) -> Arc<OpNode> {
        Arc::new(OpNode {
            op,
            stability: 1.0,
            fused: false,
            detail: None,
            inputs: vec![left, right],
        })
    }

    fn label(&self) -> String {
        let mut s = format!("{} (x{}", self.op, self.stability);
        if self.fused {
            s.push_str(", fused");
        }
        s.push(')');
        if let Some(d) = &self.detail {
            s.push_str(&format!(" [{d}]"));
        }
        s
    }

    fn render_text_into(&self, indent: usize, out: &mut String) {
        out.push_str(&format!("{}{}\n", "  ".repeat(indent), self.label()));
        for input in &self.inputs {
            input.render_text_into(indent + 1, out);
        }
    }

    fn to_json_value(&self) -> String {
        use dpnet_obs::json::{escape, number};
        let inputs: Vec<String> = self.inputs.iter().map(|i| i.to_json_value()).collect();
        let detail = match &self.detail {
            Some(d) => escape(d),
            None => "null".to_string(),
        };
        format!(
            "{{\"op\":{},\"stability\":{},\"fused\":{},\"detail\":{},\"inputs\":[{}]}}",
            escape(self.op),
            number(self.stability),
            self.fused,
            detail,
            inputs.join(",")
        )
    }
}

// ---------------------------------------------------------------------
// Per-queryable snapshot
// ---------------------------------------------------------------------

/// A side-effect-free snapshot of one queryable pipeline: operator
/// lineage, fusion state, the structured charge DAG, and the arithmetic to
/// predict what any pending aggregation would cost. Produced by
/// [`Queryable::explain`](crate::Queryable::explain).
#[derive(Debug)]
pub struct ExplainTree {
    /// The queryable's analysis label, if one was set.
    pub label: Option<String>,
    /// The queryable's cumulative stability multiplier.
    pub stability: f64,
    /// Stages pending in the unfused lazy plan (0 when materialized).
    pub pending_fused: usize,
    /// Whether the record buffer already exists (forcing would be free).
    pub materialized: bool,
    /// The operator lineage from this handle back to its source(s).
    pub lineage: Arc<OpNode>,
    /// The charge DAG from this handle to its budget root(s).
    pub charge: ChargeTree,
}

impl ExplainTree {
    /// The per-root `(full_path, ε)` deltas an aggregation at analyst
    /// accuracy `eps` would charge right now: `stability × eps` pushed
    /// through the snapshot charge DAG. Pure arithmetic.
    pub fn predict(&self, eps: f64) -> Vec<(String, f64)> {
        self.charge.predict(self.stability * eps)
    }

    /// Render as an indented text tree: plan lineage first (sink at the
    /// top, sources at the deepest indent), then the charge DAG.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "queryable{}  stability x{}  pending fused stages {}  materialized {}\n",
            self.label
                .as_deref()
                .map(|l| format!(" \"{l}\""))
                .unwrap_or_default(),
            self.stability,
            self.pending_fused,
            self.materialized
        ));
        out.push_str("plan:\n");
        self.lineage.render_text_into(1, &mut out);
        out.push_str("charge:\n");
        self.charge.render_text_into(1, &mut out);
        out
    }

    /// Render as a Graphviz DOT digraph: plan nodes (fused stages dashed),
    /// plan edges labeled with stability, charge nodes as boxes.
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph explain {\n  rankdir=BT;\n");
        let mut next_id = 0usize;
        fn walk_ops(node: &OpNode, next_id: &mut usize, out: &mut String) -> usize {
            let id = *next_id;
            *next_id += 1;
            let style = if node.fused { ",style=dashed" } else { "" };
            out.push_str(&format!(
                "  op{id} [label=\"{}\"{style}];\n",
                dot_escape(&node.label())
            ));
            for input in &node.inputs {
                let child = walk_ops(input, next_id, out);
                out.push_str(&format!("  op{child} -> op{id};\n"));
            }
            id
        }
        fn walk_charge(node: &ChargeTree, next_id: &mut usize, out: &mut String) -> usize {
            let id = *next_id;
            *next_id += 1;
            let (label, children): (String, Vec<&ChargeTree>) = match node {
                ChargeTree::Root { spent, total } => {
                    (format!("root\nspent {spent:.6}/{total:.6}"), vec![])
                }
                ChargeTree::Scaled { factor, child } => {
                    (format!("scale(x{factor})"), vec![child.as_ref()])
                }
                ChargeTree::Combined(cs) => ("combined".to_string(), cs.iter().collect()),
                ChargeTree::Part {
                    index,
                    parts,
                    part_spent,
                    max_spent,
                    child,
                } => (
                    format!(
                        "part[{index}] of {parts}\npart ε {part_spent:.6}\nmax ε {max_spent:.6}"
                    ),
                    vec![child.as_ref()],
                ),
            };
            out.push_str(&format!(
                "  charge{id} [shape=box,label=\"{}\"];\n",
                dot_escape(&label)
            ));
            for c in children {
                let child = walk_charge(c, next_id, out);
                out.push_str(&format!("  charge{id} -> charge{child};\n"));
            }
            id
        }
        let sink = walk_ops(&self.lineage, &mut next_id, &mut out);
        let charge_root = walk_charge(&self.charge, &mut next_id, &mut out);
        out.push_str(&format!(
            "  op{sink} -> charge{charge_root} [style=dotted,label=\"x{}\"];\n",
            self.stability
        ));
        out.push_str("}\n");
        out
    }

    /// Render as JSON (nested plan + charge objects).
    pub fn to_json(&self) -> String {
        use dpnet_obs::json::{escape, number};
        let label = match &self.label {
            Some(l) => escape(l),
            None => "null".to_string(),
        };
        format!(
            "{{\"label\":{label},\"stability\":{},\"pending_fused\":{},\"materialized\":{},\"plan\":{},\"charge\":{}}}",
            number(self.stability),
            self.pending_fused,
            self.materialized,
            self.lineage.to_json_value(),
            self.charge.to_json_value()
        )
    }
}

/// Escape a string for use inside a DOT double-quoted label: backslashes
/// and quotes are escaped, newlines become the two-character sequence
/// `\n`, carriage returns are dropped.
pub fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            c => out.push(c),
        }
    }
    out
}

/// Collapse partition indices in a charge path so sibling parts fold
/// together: every `part[<digits>]` segment becomes `part[*]`.
/// `"part[3]/scale(x2)/root"` → `"part[*]/scale(x2)/root"`.
pub fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    let mut rest = path;
    while let Some(pos) = rest.find("part[") {
        let after = &rest[pos + 5..];
        let digits = after.chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 && after[digits..].starts_with(']') {
            out.push_str(&rest[..pos]);
            out.push_str("part[*]");
            rest = &after[digits + 1..];
        } else {
            out.push_str(&rest[..pos + 5]);
            rest = after;
        }
    }
    out.push_str(rest);
    out
}

// ---------------------------------------------------------------------
// Run-wide recorder
// ---------------------------------------------------------------------

#[derive(Debug, Default, Clone, Copy)]
struct AggAgg {
    calls: u64,
    requested_eps: f64,
    predicted_eps: f64,
}

#[derive(Debug, Default, Clone, Copy)]
struct PathAgg {
    calls: u64,
    predicted_eps: f64,
}

#[derive(Debug, Default)]
struct RecorderState {
    /// Keyed by (operator, normalized charge path).
    aggregations: BTreeMap<(String, String), AggAgg>,
    /// Normalized root paths, folded across sibling parts.
    paths: BTreeMap<String, PathAgg>,
    /// Exact root paths, one entry per distinct part.
    full_paths: BTreeMap<String, PathAgg>,
}

/// Observes every aggregation charge in a real run and folds it into an
/// [`ExplainReport`]. Install process-wide with
/// [`install_explain_recorder`]; while installed, `Queryable` aggregations
/// charge through the traced walk, which captures the per-root ε deltas
/// under the partition-ledger lock — so the recorded "predicted" ε per
/// path is exactly what the accountants applied, even with pool workers
/// charging concurrently.
#[derive(Debug, Default)]
pub struct ExplainRecorder {
    state: Mutex<RecorderState>,
}

impl ExplainRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one successful aggregation charge into the recorder.
    /// `describe` is the static charge path of the charging queryable,
    /// `requested` the ε offered at its charge node (stability × analyst
    /// ε), and `trace` the per-root `(full_path, δ)` deltas the walk
    /// applied.
    pub(crate) fn record(
        &self,
        operator: &str,
        describe: &str,
        requested: f64,
        trace: &[(String, f64)],
    ) {
        let predicted: f64 = trace.iter().map(|(_, d)| d).sum();
        let mut st = self.state.lock();
        let agg = st
            .aggregations
            .entry((operator.to_string(), normalize_path(describe)))
            .or_default();
        agg.calls += 1;
        agg.requested_eps += requested;
        agg.predicted_eps += predicted;
        for (path, delta) in trace {
            let full = st.full_paths.entry(path.clone()).or_default();
            full.calls += 1;
            full.predicted_eps += delta;
            let norm = st.paths.entry(normalize_path(path)).or_default();
            norm.calls += 1;
            norm.predicted_eps += delta;
        }
    }

    /// Drop everything recorded so far.
    pub fn clear(&self) {
        *self.state.lock() = RecorderState::default();
    }

    /// Snapshot the recorded aggregations into a report.
    pub fn report(&self) -> ExplainReport {
        let st = self.state.lock();
        ExplainReport {
            title: String::new(),
            aggregations: st
                .aggregations
                .iter()
                .map(|((operator, path), a)| AggRecord {
                    operator: operator.clone(),
                    path: path.clone(),
                    calls: a.calls,
                    requested_eps: a.requested_eps,
                    predicted_eps: a.predicted_eps,
                })
                .collect(),
            paths: st
                .paths
                .iter()
                .map(|(path, p)| PathRecord {
                    path: path.clone(),
                    calls: p.calls,
                    predicted_eps: p.predicted_eps,
                })
                .collect(),
            full_paths: st
                .full_paths
                .iter()
                .map(|(path, p)| PathRecord {
                    path: path.clone(),
                    calls: p.calls,
                    predicted_eps: p.predicted_eps,
                })
                .collect(),
        }
    }
}

/// One aggregation site in an [`ExplainReport`]: an operator charging
/// through one (part-normalized) charge path.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRecord {
    /// Aggregation operator name (`"noisy_count"`, …).
    pub operator: String,
    /// Normalized static charge path of the charging queryable.
    pub path: String,
    /// Number of successful charges folded in.
    pub calls: u64,
    /// Total ε offered at the charge node (stability × analyst ε).
    pub requested_eps: f64,
    /// Total ε predicted to reach budget roots (after max-of-parts).
    pub predicted_eps: f64,
}

/// One charge path in an [`ExplainReport`] with its call count and
/// predicted root-ε total.
#[derive(Debug, Clone, PartialEq)]
pub struct PathRecord {
    /// The root charge path (normalized or exact, per the containing list).
    pub path: String,
    /// Charges that walked this path (zero-delta walks included).
    pub calls: u64,
    /// Total ε predicted to land on the root through this path.
    pub predicted_eps: f64,
}

/// Measured reality for EXPLAIN ANALYZE, folded from a profiled run: net
/// ε per normalized path and per aggregation site (from accountant charge
/// events), span self-time per operator, and plan materialization stats.
#[derive(Debug, Default, Clone)]
pub struct Overlay {
    /// Net measured ε per *normalized* charge path.
    pub measured_paths: BTreeMap<String, f64>,
    /// Net measured ε per (operator, normalized path) aggregation site.
    pub measured_aggs: BTreeMap<(String, String), f64>,
    /// Span self-time (ns) per operator name.
    pub self_ns: BTreeMap<String, u64>,
    /// Number of actual plan materializations observed.
    pub materializations: u64,
    /// The largest fused-stage count among observed materializations.
    pub max_fused_stages: u64,
    /// Wall time of the analyzed run (ns).
    pub wall_ns: u64,
}

/// The folded result of watching a run with an [`ExplainRecorder`]:
/// per-aggregation and per-charge-path predicted ε, optionally overlaid
/// with measured reality. Renders as text, DOT, or JSON.
#[derive(Debug, Clone, Default)]
pub struct ExplainReport {
    /// Display title (e.g. the experiment id).
    pub title: String,
    /// Aggregation sites, sorted by (operator, path).
    pub aggregations: Vec<AggRecord>,
    /// Normalized charge paths, sorted; sibling parts folded together, so
    /// each value is order-independent even under concurrent charges.
    pub paths: Vec<PathRecord>,
    /// Exact charge paths (one per distinct part), sorted.
    pub full_paths: Vec<PathRecord>,
}

impl ExplainReport {
    /// Total predicted ε across all root paths.
    pub fn predicted_total(&self) -> f64 {
        self.paths.iter().map(|p| p.predicted_eps).sum()
    }

    /// Render as a text tree: the charge-path tree (root at the top) with
    /// predicted ε per path, then one line per aggregation site. With an
    /// overlay, every path carries measured ε and every aggregation line
    /// carries measured ε and span self-time.
    pub fn render_text(&self, overlay: Option<&Overlay>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== explain{}{} ===\n",
            if self.title.is_empty() { "" } else { ": " },
            self.title
        ));
        out.push_str("charge paths (root at top, sibling parts folded):\n");
        // Build a tree from root-first segment lists.
        #[derive(Default)]
        struct Node {
            children: BTreeMap<String, Node>,
            record: Option<(u64, f64)>,
            path: String,
        }
        let mut root = Node::default();
        for p in &self.paths {
            let mut cursor = &mut root;
            for seg in p.path.split('/').rev() {
                cursor = cursor.children.entry(seg.to_string()).or_default();
            }
            cursor.record = Some((p.calls, p.predicted_eps));
            cursor.path = p.path.clone();
        }
        fn render(
            node: &Node,
            name: &str,
            indent: usize,
            overlay: Option<&Overlay>,
            out: &mut String,
        ) {
            if !name.is_empty() {
                let mut line = format!("{}{name}", "  ".repeat(indent));
                if let Some((calls, eps)) = node.record {
                    line.push_str(&format!("  calls {calls}  predicted ε {eps:.6}"));
                    if let Some(ov) = overlay {
                        if let Some(measured) = ov.measured_paths.get(&node.path) {
                            line.push_str(&format!("  measured ε {measured:.6}"));
                        }
                    }
                }
                line.push('\n');
                out.push_str(&line);
            }
            for (child_name, child) in &node.children {
                render(child, child_name, indent + 1, overlay, out);
            }
        }
        render(&root, "", 0, overlay, &mut out);
        out.push_str("aggregations:\n");
        for a in &self.aggregations {
            let mut line = format!(
                "  {} @ {}  calls {}  requested ε {:.6}  predicted ε {:.6}",
                a.operator, a.path, a.calls, a.requested_eps, a.predicted_eps
            );
            if let Some(ov) = overlay {
                if let Some(measured) = ov.measured_aggs.get(&(a.operator.clone(), a.path.clone()))
                {
                    line.push_str(&format!("  measured ε {measured:.6}"));
                }
                if let Some(self_ns) = ov.self_ns.get(&a.operator) {
                    line.push_str(&format!("  self {:.3}ms", *self_ns as f64 / 1e6));
                }
            }
            line.push('\n');
            out.push_str(&line);
        }
        if let Some(ov) = overlay {
            out.push_str(&format!(
                "analyze: wall {:.3}ms, {} plan materializations (max {} fused stages)\n",
                ov.wall_ns as f64 / 1e6,
                ov.materializations,
                ov.max_fused_stages
            ));
        }
        out
    }

    /// Render as a Graphviz DOT digraph of the normalized charge-path tree
    /// with aggregation sites attached; labels are DOT-escaped.
    pub fn render_dot(&self, overlay: Option<&Overlay>) -> String {
        let mut out = String::from("digraph explain {\n  rankdir=BT;\n");
        if !self.title.is_empty() {
            out.push_str(&format!(
                "  label=\"explain: {}\";\n  labelloc=t;\n",
                dot_escape(&self.title)
            ));
        }
        // One node per normalized path prefix, root-first.
        let mut ids: BTreeMap<String, usize> = BTreeMap::new();
        let mut next = 0usize;
        let mut id_of = |key: &str, ids: &mut BTreeMap<String, usize>| -> (usize, bool) {
            if let Some(&id) = ids.get(key) {
                (id, false)
            } else {
                let id = next;
                next += 1;
                ids.insert(key.to_string(), id);
                (id, true)
            }
        };
        for p in &self.paths {
            let segs: Vec<&str> = p.path.split('/').rev().collect();
            let mut prefix = String::new();
            let mut parent: Option<usize> = None;
            for (i, seg) in segs.iter().enumerate() {
                if !prefix.is_empty() {
                    prefix.push('/');
                }
                prefix.push_str(seg);
                let (id, fresh) = id_of(&prefix, &mut ids);
                if fresh {
                    let mut label = seg.to_string();
                    if i == segs.len() - 1 {
                        label.push_str(&format!("\npredicted ε {:.6}", p.predicted_eps));
                        if let Some(ov) = overlay {
                            if let Some(m) = ov.measured_paths.get(&p.path) {
                                label.push_str(&format!("\nmeasured ε {m:.6}"));
                            }
                        }
                    }
                    out.push_str(&format!(
                        "  n{id} [shape=box,label=\"{}\"];\n",
                        dot_escape(&label)
                    ));
                    if let Some(pid) = parent {
                        out.push_str(&format!("  n{id} -> n{pid};\n"));
                    }
                }
                parent = Some(id);
            }
        }
        for (i, a) in self.aggregations.iter().enumerate() {
            let mut label = format!(
                "{}\ncalls {}\npredicted ε {:.6}",
                a.operator, a.calls, a.predicted_eps
            );
            if let Some(ov) = overlay {
                if let Some(self_ns) = ov.self_ns.get(&a.operator) {
                    label.push_str(&format!("\nself {:.3}ms", *self_ns as f64 / 1e6));
                }
            }
            out.push_str(&format!("  agg{i} [label=\"{}\"];\n", dot_escape(&label)));
            // Attach to the leaf node of the aggregation's path, if present.
            let key: String = a.path.split('/').rev().collect::<Vec<_>>().join("/");
            if let Some(&leaf) = ids.get(&key) {
                out.push_str(&format!("  agg{i} -> n{leaf} [style=dotted];\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Render as JSON. Objects inside the arrays are flat (scalar fields
    /// only), so line-oriented or flat-object parsers can consume them.
    /// With an overlay, aggregation objects gain `measured_eps` and
    /// `self_ns`, path objects gain `measured_eps`, and a top-level
    /// `analyze` summary object is appended.
    pub fn to_json(&self, overlay: Option<&Overlay>) -> String {
        use dpnet_obs::json::JsonObj;
        let aggs: Vec<String> = self
            .aggregations
            .iter()
            .map(|a| {
                let mut o = JsonObj::new();
                o.field_str("operator", &a.operator)
                    .field_str("path", &a.path)
                    .field_u64("calls", a.calls)
                    .field_f64("requested_eps", a.requested_eps)
                    .field_f64("predicted_eps", a.predicted_eps);
                if let Some(ov) = overlay {
                    if let Some(m) = ov.measured_aggs.get(&(a.operator.clone(), a.path.clone())) {
                        o.field_f64("measured_eps", *m);
                    }
                    if let Some(s) = ov.self_ns.get(&a.operator) {
                        o.field_u64("self_ns", *s);
                    }
                }
                o.finish()
            })
            .collect();
        let paths: Vec<String> = self
            .paths
            .iter()
            .map(|p| {
                let mut o = JsonObj::new();
                o.field_str("path", &p.path)
                    .field_u64("calls", p.calls)
                    .field_f64("predicted_eps", p.predicted_eps);
                if let Some(ov) = overlay {
                    if let Some(m) = ov.measured_paths.get(&p.path) {
                        o.field_f64("measured_eps", *m);
                    }
                }
                o.finish()
            })
            .collect();
        let mut out = format!(
            "{{\"explain\":{},\"predicted_total\":{},\"aggregations\":[{}],\"paths\":[{}]",
            dpnet_obs::json::escape(&self.title),
            dpnet_obs::json::number(self.predicted_total()),
            aggs.join(","),
            paths.join(",")
        );
        if let Some(ov) = overlay {
            let mut o = JsonObj::new();
            o.field_u64("wall_ns", ov.wall_ns)
                .field_u64("materializations", ov.materializations)
                .field_u64("max_fused_stages", ov.max_fused_stages);
            out.push_str(&format!(",\"analyze\":{}", o.finish()));
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------
// Process-wide recorder registry (mirrors the span profiler's)
// ---------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    enabled: AtomicBool,
    recorder: Mutex<Option<Arc<ExplainRecorder>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Install `rec` as the process-wide explain recorder, returning the one
/// it replaced (if any). While installed, every successful `Queryable`
/// aggregation charge is folded into it.
pub fn install_explain_recorder(rec: Arc<ExplainRecorder>) -> Option<Arc<ExplainRecorder>> {
    let reg = registry();
    let old = reg.recorder.lock().replace(rec);
    reg.enabled.store(true, Ordering::Release);
    old
}

/// Remove the process-wide explain recorder, returning it (if any).
pub fn uninstall_explain_recorder() -> Option<Arc<ExplainRecorder>> {
    let reg = registry();
    reg.enabled.store(false, Ordering::Release);
    reg.recorder.lock().take()
}

/// Whether an explain recorder is currently installed. One relaxed atomic
/// load: the answer is advisory (used to skip tracing work early).
pub fn explain_enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// The installed recorder, if any (cheap clone of an `Arc`).
pub(crate) fn recorder() -> Option<Arc<ExplainRecorder>> {
    if !explain_enabled() {
        return None;
    }
    registry().recorder.lock().clone()
}

/// Serializes tests (crate-wide) that install the process-wide recorder.
#[cfg(test)]
pub(crate) fn test_global_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::test_global_guard as global_guard;
    use super::*;

    #[test]
    fn normalize_folds_part_indices_only() {
        assert_eq!(
            normalize_path("part[3]/scale(x2)/root"),
            "part[*]/scale(x2)/root"
        );
        assert_eq!(
            normalize_path("part[12]/part[0]/root"),
            "part[*]/part[*]/root"
        );
        assert_eq!(normalize_path("scale(x2)/root"), "scale(x2)/root");
        // Non-numeric or unclosed brackets are left alone.
        assert_eq!(normalize_path("part[x]/root"), "part[x]/root");
        assert_eq!(normalize_path("part["), "part[");
    }

    #[test]
    fn dot_escape_handles_quotes_newlines_and_backslashes() {
        assert_eq!(dot_escape("a\"b"), "a\\\"b");
        assert_eq!(dot_escape("line1\nline2"), "line1\\nline2");
        assert_eq!(dot_escape("back\\slash"), "back\\\\slash");
        assert_eq!(dot_escape("cr\r\n"), "cr\\n");
    }

    #[test]
    fn charge_tree_predicts_part_deltas_from_snapshot() {
        let tree = ChargeTree::Part {
            index: 1,
            parts: 4,
            part_spent: 0.2,
            max_spent: 0.5,
            child: Box::new(ChargeTree::Scaled {
                factor: 2.0,
                child: Box::new(ChargeTree::Root {
                    spent: 1.0,
                    total: 10.0,
                }),
            }),
        };
        assert_eq!(tree.path(), "part[1]/scale(x2)/root");
        // 0.2 + 0.1 stays under the 0.5 max: nothing reaches the root.
        let under = tree.predict(0.1);
        assert_eq!(under, vec![("part[1]/scale(x2)/root".to_string(), 0.0)]);
        // 0.2 + 0.4 = 0.6 exceeds the max by 0.1, scaled ×2 at the root.
        let over = tree.predict(0.4);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].0, "part[1]/scale(x2)/root");
        assert!((over[0].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn recorder_folds_aggregations_and_paths() {
        let rec = ExplainRecorder::new();
        rec.record(
            "noisy_count",
            "part[0]/root",
            0.1,
            &[("part[0]/root".to_string(), 0.1)],
        );
        rec.record(
            "noisy_count",
            "part[1]/root",
            0.1,
            &[("part[1]/root".to_string(), 0.0)],
        );
        let report = rec.report();
        assert_eq!(report.aggregations.len(), 1);
        let a = &report.aggregations[0];
        assert_eq!(a.operator, "noisy_count");
        assert_eq!(a.path, "part[*]/root");
        assert_eq!(a.calls, 2);
        assert!((a.requested_eps - 0.2).abs() < 1e-12);
        assert!((a.predicted_eps - 0.1).abs() < 1e-12);
        assert_eq!(report.paths.len(), 1);
        assert_eq!(report.paths[0].calls, 2);
        assert!((report.paths[0].predicted_eps - 0.1).abs() < 1e-12);
        assert_eq!(report.full_paths.len(), 2);
        assert!((report.predicted_total() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn report_renders_all_three_formats() {
        let rec = ExplainRecorder::new();
        rec.record(
            "noisy_count",
            "part[2]/scale(x1)/root",
            0.004,
            &[("part[2]/scale(x1)/root".to_string(), 0.004)],
        );
        let mut report = rec.report();
        report.title = "fig1".to_string();
        let text = report.render_text(None);
        assert!(text.contains("explain: fig1"));
        assert!(text.contains("part[*]"));
        assert!(text.contains("noisy_count"));
        let dot = report.render_dot(None);
        assert!(dot.starts_with("digraph explain {"));
        assert!(dot.contains("agg0"));
        let json = report.to_json(None);
        assert!(json.contains("\"explain\":\"fig1\""));
        assert!(json.contains("\"predicted_eps\":0.004"));
        assert!(!json.contains("\"analyze\""));
    }

    #[test]
    fn overlay_fields_show_up_in_every_format() {
        let rec = ExplainRecorder::new();
        rec.record("noisy_count", "root", 0.1, &[("root".to_string(), 0.1)]);
        let report = rec.report();
        let mut overlay = Overlay::default();
        overlay.measured_paths.insert("root".to_string(), 0.1);
        overlay
            .measured_aggs
            .insert(("noisy_count".to_string(), "root".to_string()), 0.1);
        overlay.self_ns.insert("noisy_count".to_string(), 2_000_000);
        overlay.materializations = 3;
        overlay.max_fused_stages = 2;
        overlay.wall_ns = 5_000_000;
        let text = report.render_text(Some(&overlay));
        assert!(text.contains("measured ε 0.100000"));
        assert!(text.contains("self 2.000ms"));
        assert!(text.contains("3 plan materializations"));
        let json = report.to_json(Some(&overlay));
        assert!(json.contains("\"measured_eps\":0.1"));
        assert!(json.contains("\"self_ns\":2000000"));
        assert!(json.contains("\"analyze\":{"));
        let dot = report.render_dot(Some(&overlay));
        assert!(dot.contains("measured"));
    }

    #[test]
    fn install_uninstall_round_trips() {
        let _guard = global_guard();
        assert!(!explain_enabled());
        let rec = Arc::new(ExplainRecorder::new());
        assert!(install_explain_recorder(rec.clone()).is_none());
        assert!(explain_enabled());
        let got = recorder().expect("installed");
        assert!(Arc::ptr_eq(&got, &rec));
        let back = uninstall_explain_recorder().expect("still installed");
        assert!(Arc::ptr_eq(&back, &rec));
        assert!(!explain_enabled());
        assert!(recorder().is_none());
    }

    #[test]
    fn explain_tree_renders_lineage_and_charge() {
        let source = OpNode::source(None);
        let filtered = OpNode::derived("filter", 1.0, true, None, source);
        let grouped = OpNode::derived("group_by", 2.0, false, None, filtered);
        let tree = ExplainTree {
            label: Some("ports".to_string()),
            stability: 2.0,
            pending_fused: 0,
            materialized: true,
            lineage: grouped,
            charge: ChargeTree::Root {
                spent: 0.2,
                total: 1.0,
            },
        };
        let predicted = tree.predict(0.1);
        assert_eq!(predicted.len(), 1);
        assert_eq!(predicted[0].0, "root");
        assert!((predicted[0].1 - 0.2).abs() < 1e-12);
        let text = tree.render_text();
        assert!(text.contains("\"ports\""));
        assert!(text.contains("group_by (x2)"));
        assert!(text.contains("filter (x1, fused)"));
        assert!(text.contains("source"));
        assert!(text.contains("root  [spent 0.200000 of 1.000000]"));
        let dot = tree.render_dot();
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("op1 -> op0"));
        let json = tree.to_json();
        assert!(json.contains("\"op\":\"group_by\""));
        assert!(json.contains("\"kind\":\"root\""));
    }
}
