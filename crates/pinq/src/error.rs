//! Error types for the PINQ engine.

use std::fmt;

/// Errors surfaced by privacy-sensitive operations.
///
/// Every aggregation charges the privacy budget of the dataset it touches;
/// the principal failure mode is running out of budget. Other variants
/// capture misuse of the API (invalid ε, empty candidate sets for the
/// exponential mechanism, and so on).
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The requested spend would push the cumulative privacy cost past the
    /// budget configured for the protected dataset.
    BudgetExceeded {
        /// ε the operation attempted to spend (already scaled by stability).
        requested: f64,
        /// ε remaining in the budget at the time of the request.
        available: f64,
    },
    /// ε must be strictly positive and finite.
    InvalidEpsilon(f64),
    /// The exponential mechanism needs at least one candidate output.
    EmptyCandidates,
    /// A clamping range was empty or inverted (`lo >= hi`).
    InvalidRange {
        /// Lower bound supplied by the caller.
        lo: f64,
        /// Upper bound supplied by the caller.
        hi: f64,
    },
    /// A stability (sensitivity multiplier) became non-finite or
    /// non-positive, which would break budget accounting.
    InvalidStability(f64),
    /// `select_many` requires a positive per-record output bound.
    InvalidFanout(usize),
    /// A worker pool needs at least one worker; `workers: 0` is refused
    /// rather than silently clamped.
    InvalidWorkers(usize),
    /// The key list handed to `partition` contains duplicates. Buckets are
    /// looked up through a key→index map, so a duplicate key would silently
    /// route every matching record to the *last* occurrence and leave the
    /// earlier buckets empty — skewing per-key results rather than failing.
    DuplicatePartitionKeys,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "privacy budget exceeded: requested ε={requested}, only ε={available} available"
            ),
            Error::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            Error::EmptyCandidates => {
                write!(
                    f,
                    "exponential mechanism requires a non-empty candidate set"
                )
            }
            Error::InvalidRange { lo, hi } => {
                write!(f, "invalid clamping range: [{lo}, {hi}]")
            }
            Error::InvalidStability(s) => {
                write!(f, "invalid stability multiplier: {s}")
            }
            Error::InvalidFanout(k) => {
                write!(f, "select_many fanout bound must be positive, got {k}")
            }
            Error::InvalidWorkers(n) => {
                write!(f, "worker pool size must be at least 1, got {n}")
            }
            Error::DuplicatePartitionKeys => {
                write!(f, "partition keys must be distinct")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Validate an analyst-supplied ε.
pub(crate) fn check_epsilon(eps: f64) -> Result<()> {
    if eps.is_finite() && eps > 0.0 {
        Ok(())
    } else {
        Err(Error::InvalidEpsilon(eps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation_rejects_bad_values() {
        assert!(check_epsilon(0.1).is_ok());
        assert!(check_epsilon(10.0).is_ok());
        assert_eq!(check_epsilon(0.0), Err(Error::InvalidEpsilon(0.0)));
        assert_eq!(check_epsilon(-1.0), Err(Error::InvalidEpsilon(-1.0)));
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = Error::BudgetExceeded {
            requested: 1.0,
            available: 0.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("requested"));
        assert!(msg.contains("0.5"));
        assert!(Error::EmptyCandidates.to_string().contains("candidate"));
        assert!(Error::InvalidRange { lo: 1.0, hi: 0.0 }
            .to_string()
            .contains("range"));
    }
}
