//! Parallel composition: the `Partition` ledger.
//!
//! `Partition` splits one protected dataset into disjoint parts keyed by an
//! arbitrary (data-independent) key set. Because a single record lands in at
//! most one part, analyses of *different* parts do not compound: the privacy
//! cost to the source is the **maximum** of the costs to the parts, not their
//! sum (paper §2.2, Table 1).
//!
//! The ledger tracks each part's cumulative spend. When a part's spend grows,
//! only the increase of the maximum (if any) is forwarded to the source. This
//! lets an analyst, say, partition packets by destination port and analyze
//! every port at cost `ε` total, rather than `ε × #ports` — the property the
//! paper's `cdf2` estimator and frequent-string search rely on.

use crate::budget::ChargeMeta;
use crate::charge::ChargeNode;
use crate::error::Result;
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-part spends plus the running maximum, kept under one lock so a
/// charge is O(1): the max can only grow through the part that was just
/// incremented, so no rescan is needed. (With 2^k-way fan-outs the old
/// scan-per-charge made the worm search quadratic in the part count.)
#[derive(Debug)]
struct LedgerState {
    /// Cumulative spend per part.
    spends: Vec<f64>,
    /// `spends.iter().fold(0.0, f64::max)`, maintained incrementally.
    max: f64,
}

/// Shared accounting state for the parts of one `Partition` operation.
#[derive(Debug)]
pub(crate) struct PartitionLedger {
    parent: Arc<ChargeNode>,
    state: Mutex<LedgerState>,
}

impl PartitionLedger {
    /// Create a ledger with `parts` children charging through `parent`.
    pub(crate) fn new(parent: Arc<ChargeNode>, parts: usize) -> Self {
        PartitionLedger {
            parent,
            state: Mutex::new(LedgerState {
                spends: vec![0.0; parts],
                max: 0.0,
            }),
        }
    }

    /// The node this ledger forwards max-increases to (for static charge
    /// path rendering — see [`ChargeNode::describe`]).
    pub(crate) fn parent(&self) -> &Arc<ChargeNode> {
        &self.parent
    }

    /// Spend `eps` on behalf of part `index`; forwards only the increase of
    /// the maximum to the parent, rolling back on parent failure.
    #[cfg(test)]
    pub(crate) fn charge_child(&self, index: usize, eps: f64) -> Result<()> {
        self.charge_child_traced(index, eps, &ChargeMeta::new("direct", None), "", &mut None)
    }

    /// [`PartitionLedger::charge_child`] with provenance threaded through
    /// (the forwarded max-increase carries the same operator/label/path)
    /// that also records per-root
    /// deltas into `trace` (see [`ChargeNode::charge_traced`]). The
    /// forwarded delta is computed and traced while the ledger lock is
    /// held, so the trace stays exact under concurrent part charges. A
    /// charge absorbed below the current max traces a zero delta for every
    /// root it would have reached, keeping per-path call counts honest.
    pub(crate) fn charge_child_traced(
        &self,
        index: usize,
        eps: f64,
        meta: &ChargeMeta,
        path: &str,
        trace: &mut Option<&mut Vec<(String, f64)>>,
    ) -> Result<()> {
        let mut st = self.state.lock();
        let old_max = st.max;
        st.spends[index] += eps;
        // Only the incremented part can raise the max, so this stays O(1).
        let new_max = st.spends[index].max(old_max);
        if new_max > old_max {
            if let Err(e) = self
                .parent
                .charge_traced(new_max - old_max, meta, path, trace)
            {
                st.spends[index] -= eps;
                return Err(e);
            }
            st.max = new_max;
        } else if let Some(t) = trace.as_mut() {
            self.parent.predict_into(0.0, path, t);
        }
        Ok(())
    }

    /// The delta a `charge_child(index, eps)` would forward to the parent
    /// right now, given current part spends. Side-effect-free.
    pub(crate) fn predict_child(&self, index: usize, eps: f64) -> f64 {
        let st = self.state.lock();
        (st.spends[index] + eps).max(st.max) - st.max
    }

    /// Undo a previous `charge_child(index, eps)`, refunding the parent for
    /// any resulting decrease of the maximum.
    #[cfg(test)]
    pub(crate) fn refund_child(&self, index: usize, eps: f64) {
        self.refund_child_with(index, eps, &ChargeMeta::new("direct", None), "");
    }

    /// [`PartitionLedger::refund_child`] with provenance threaded through.
    pub(crate) fn refund_child_with(&self, index: usize, eps: f64, meta: &ChargeMeta, path: &str) {
        let mut st = self.state.lock();
        let before = st.spends[index];
        st.spends[index] = (before - eps).max(0.0);
        // The max can only drop if the refunded part was holding it; only
        // then is a rescan needed.
        if before >= st.max {
            let new_max = st.spends.iter().cloned().fold(0.0, f64::max);
            if new_max < st.max {
                self.parent.refund_with(st.max - new_max, meta, path);
                st.max = new_max;
            }
        }
    }

    /// Cumulative spend of each part (explain snapshots / introspection).
    pub(crate) fn spends(&self) -> Vec<f64> {
        self.state.lock().spends.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Accountant;

    fn ledger(budget: f64, parts: usize) -> (Accountant, PartitionLedger) {
        let acct = Accountant::new(budget);
        let parent = Arc::new(ChargeNode::Root(acct.clone()));
        (acct, PartitionLedger::new(parent, parts))
    }

    #[test]
    fn parallel_parts_cost_only_the_max() {
        let (acct, ledger) = ledger(1.0, 4);
        for i in 0..4 {
            ledger.charge_child(i, 0.3).unwrap();
        }
        // Four parts each spent 0.3, but the source is charged max = 0.3.
        assert!((acct.spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn repeated_spends_on_one_part_accumulate() {
        let (acct, ledger) = ledger(1.0, 2);
        ledger.charge_child(0, 0.2).unwrap();
        ledger.charge_child(0, 0.2).unwrap();
        assert!((acct.spent() - 0.4).abs() < 1e-12);
        // The other part can now spend up to 0.4 for free.
        ledger.charge_child(1, 0.4).unwrap();
        assert!((acct.spent() - 0.4).abs() < 1e-12);
        // Going beyond the current max charges the difference.
        ledger.charge_child(1, 0.1).unwrap();
        assert!((acct.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parent_failure_rolls_back_child_spend() {
        let (acct, ledger) = ledger(0.25, 2);
        ledger.charge_child(0, 0.2).unwrap();
        // This would raise the max to 0.5, exceeding the 0.25 budget.
        assert!(ledger.charge_child(1, 0.5).is_err());
        assert_eq!(ledger.spends(), vec![0.2, 0.0]);
        assert!((acct.spent() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn refund_reduces_parent_only_when_max_drops() {
        let (acct, ledger) = ledger(1.0, 2);
        ledger.charge_child(0, 0.4).unwrap();
        ledger.charge_child(1, 0.3).unwrap();
        assert!((acct.spent() - 0.4).abs() < 1e-12);
        // Refunding the non-max part changes nothing upstream.
        ledger.refund_child(1, 0.3);
        assert!((acct.spent() - 0.4).abs() < 1e-12);
        // Refunding the max part drops the parent charge to the new max (0).
        ledger.refund_child(0, 0.4);
        assert!(acct.spent().abs() < 1e-12);
    }

    #[test]
    fn nested_partitions_compose() {
        // Partition inside a partition: inner ledger charges through an
        // outer PartitionPart node.
        let acct = Accountant::new(1.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let outer = Arc::new(PartitionLedger::new(root, 2));
        let outer_part0 = Arc::new(ChargeNode::PartitionPart {
            ledger: outer.clone(),
            index: 0,
        });
        let inner = PartitionLedger::new(outer_part0, 3);
        for i in 0..3 {
            inner.charge_child(i, 0.5).unwrap();
        }
        // Inner parts are parallel (max 0.5), outer parts parallel again.
        assert!((acct.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predict_child_never_mutates_and_matches_forwarding() {
        let (acct, ledger) = ledger(1.0, 2);
        ledger.charge_child(0, 0.4).unwrap();
        // Under the max: forwarded delta would be zero.
        assert_eq!(ledger.predict_child(1, 0.3), 0.0);
        // Beyond the max: only the increase is forwarded.
        assert!((ledger.predict_child(1, 0.5) - 0.1).abs() < 1e-12);
        // Prediction left everything untouched.
        assert_eq!(ledger.spends(), vec![0.4, 0.0]);
        assert!((acct.spent() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn concurrent_traced_charges_sum_to_the_accountant_spend() {
        let (acct, ledger) = ledger(100.0, 8);
        let ledger = Arc::new(ledger);
        let meta = ChargeMeta::new("noisy_count", None);
        let traced_total: f64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let ledger = ledger.clone();
                    let meta = meta.clone();
                    s.spawn(move || {
                        let mut local = Vec::new();
                        for _ in 0..100 {
                            ledger
                                .charge_child_traced(i, 0.01, &meta, "part", &mut Some(&mut local))
                                .unwrap();
                        }
                        local.iter().map(|(_, d)| d).sum::<f64>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Deltas were captured under the ledger lock, so they account for
        // exactly what reached the source — no race can skew the split.
        assert!((traced_total - acct.spent()).abs() < 1e-9);
        assert!((acct.spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_child_charges_are_consistent() {
        let (acct, ledger) = ledger(100.0, 8);
        let ledger = Arc::new(ledger);
        std::thread::scope(|s| {
            for i in 0..8 {
                let ledger = ledger.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        ledger.charge_child(i, 0.01).unwrap();
                    }
                });
            }
        });
        // Every part spent exactly 1.0, so the source owes exactly 1.0.
        assert!((acct.spent() - 1.0).abs() < 1e-9);
    }
}
