//! Lazy fused query plans.
//!
//! Record-shaping operators (`filter`, `map`, `select_many`) do not run when
//! declared. Each declaration composes a *push-based* per-record stage onto
//! the plan inherited from its input: a stage is a closure that walks a
//! range of the source and pushes every surviving output record into an
//! `emit` callback. Adjacent stages therefore fuse into one pass with no
//! intermediate `Vec` — a three-deep `filter → map → filter` chain touches
//! the source exactly once, when something *forces* it.
//!
//! Forcing happens at barriers: every aggregation, the key-shuffling
//! operators (`group_by`, `join`, `partition`, …) and the explicit
//! [`crate::Queryable::collect_protected`]. The result is memoized in a
//! [`OnceLock`], so a plan materializes at most once no matter how many
//! aggregations read it.
//!
//! Privacy accounting is untouched by any of this: stability multipliers
//! and charge nodes are updated when an operator is *declared*, exactly as
//! in the eager engine, so a lazy pipeline provably spends the same ε as
//! its eager equivalent. Laziness only moves *when* the record buffers
//! exist — never what is released or charged.
//!
//! Determinism: stages are pure per-record functions, so a pool-forced
//! materialization (fixed-size chunks, concatenated in chunk order) is
//! bit-identical to the sequential one, for any worker count.

use crate::exec::ExecPool;
use crate::shard::Shards;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// A fused pipeline stage: walk `range` of the plan's source and push each
/// output record into `emit`.
pub(crate) type Runner<T> = Arc<dyn Fn(Range<usize>, &mut dyn FnMut(T)) + Send + Sync>;

/// What a transform sees when it extends a pipeline: either a materialized
/// buffer to use as a fresh source, or the parent's unforced fused chain.
pub(crate) enum View<T> {
    /// A concrete buffer (an eager source, or a memoized plan output).
    Source(Shards<T>),
    /// An unforced chain: runner, source length, stages already fused.
    Chain(Runner<T>, usize, usize),
}

/// A lazy, memoized, fused transform chain over a shared source.
pub(crate) struct LazyPlan<T> {
    /// The fused pipeline from source indices to output records.
    run: Runner<T>,
    /// Length of the source buffer `run` ranges over.
    source_len: usize,
    /// Number of operator stages fused into `run`.
    fused: usize,
    /// Memoized materialization; filled at most once.
    cell: OnceLock<Shards<T>>,
}

impl<T> LazyPlan<T> {
    /// A plan over `source_len` source records with `fused` stages.
    pub(crate) fn new(
        source_len: usize,
        fused: usize,
        run: impl Fn(Range<usize>, &mut dyn FnMut(T)) + Send + Sync + 'static,
    ) -> Self {
        LazyPlan {
            run: Arc::new(run),
            source_len,
            fused,
            cell: OnceLock::new(),
        }
    }

    /// Number of operator stages fused into this plan.
    pub(crate) fn fused(&self) -> usize {
        self.fused
    }

    /// Source record count the fused pass ranges over.
    pub(crate) fn source_len(&self) -> usize {
        self.source_len
    }

    /// The view a downstream transform should compose against. Once the
    /// plan has materialized, downstream stages read the memoized buffer
    /// instead of re-running the whole chain from the source.
    pub(crate) fn view(&self) -> View<T> {
        match self.cell.get() {
            Some(done) => View::Source(done.clone()),
            None => View::Chain(self.run.clone(), self.source_len, self.fused),
        }
    }

    /// Force on the calling thread: one pass over the whole source. Sets
    /// `*fresh` when this call actually materialized (vs. read the memo).
    pub(crate) fn force_sequential(&self, fresh: &mut bool) -> Shards<T> {
        self.cell
            .get_or_init(|| {
                *fresh = true;
                let mut out = Vec::new();
                (self.run)(0..self.source_len, &mut |t| out.push(t));
                Shards::from_vec(out)
            })
            .clone()
    }
}

impl<T: Send + Sync> LazyPlan<T> {
    /// Force on a worker pool: the source splits into fixed-size chunks
    /// (positions depend only on length and chunk size) and each chunk runs
    /// the fused pass independently. Each chunk's output becomes one shard
    /// of the result, in chunk order — the flat sequence is bit-identical
    /// to [`LazyPlan::force_sequential`] for any worker count, and no
    /// concatenation pass runs after the workers join.
    pub(crate) fn force_pool(&self, pool: &ExecPool, fresh: &mut bool) -> Shards<T> {
        self.cell
            .get_or_init(|| {
                *fresh = true;
                let ranges = pool.chunks(self.source_len);
                let chunks: Vec<Vec<T>> = pool.run(&ranges, |_, r| {
                    let mut v = Vec::new();
                    (self.run)(r.clone(), &mut |t| v.push(t));
                    v
                });
                Shards::from_vecs(chunks)
            })
            .clone()
    }
}

impl<T> std::fmt::Debug for LazyPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Record contents (and counts) are protected; the pipeline shape
        // is analyst-chosen metadata.
        f.debug_struct("LazyPlan")
            .field("fused", &self.fused)
            .field("materialized", &self.cell.get().is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doubler(n: usize) -> LazyPlan<usize> {
        let src: Arc<Vec<usize>> = Arc::new((0..n).collect());
        LazyPlan::new(n, 2, move |r, emit| {
            for &v in &src[r] {
                if v % 3 == 0 {
                    emit(v * 2);
                }
            }
        })
    }

    #[test]
    fn sequential_and_pool_forcing_agree() {
        let seq = {
            let mut fresh = false;
            doubler(10_000).force_sequential(&mut fresh)
        };
        let pooled = {
            let mut fresh = false;
            let pool = ExecPool::new(4).unwrap().with_chunk_size(512);
            doubler(10_000).force_pool(&pool, &mut fresh)
        };
        // Physical layouts differ (one shard vs one per chunk); the flat
        // sequences are bit-identical.
        assert!(pooled.shard_count() > seq.shard_count());
        assert_eq!(
            seq.iter().collect::<Vec<_>>(),
            pooled.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn forcing_memoizes() {
        let plan = doubler(100);
        let mut first = false;
        let a = plan.force_sequential(&mut first);
        assert!(first, "first force must materialize");
        let mut second = false;
        let b = plan.force_sequential(&mut second);
        assert!(!second, "second force must hit the memo");
        assert!(a.ptr_eq(&b));
    }

    #[test]
    fn view_switches_to_the_memo_after_forcing() {
        let plan = doubler(100);
        assert!(matches!(plan.view(), View::Chain(_, 100, 2)));
        let mut fresh = false;
        plan.force_sequential(&mut fresh);
        match plan.view() {
            View::Source(buf) => assert_eq!(buf.len(), 34),
            View::Chain(..) => panic!("forced plan should expose its memo"),
        }
    }

    #[test]
    fn debug_output_hides_data() {
        let plan = doubler(5);
        let s = format!("{plan:?}");
        assert!(!s.contains('5'), "debug leaked source length: {s}");
        assert!(s.contains("fused"));
    }
}
