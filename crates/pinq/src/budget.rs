//! Privacy budget accounting.
//!
//! Each protected dataset is given a total privacy budget ε by its owner.
//! Every aggregation spends a portion of it (scaled by the stability of the
//! transformations between the source and the aggregation); once the budget
//! is exhausted, further queries fail. This is the *sequential composition*
//! rule: analyses with costs c₁ and c₂ have total cost at most c₁ + c₂
//! (paper §7). The complementary *parallel composition* rule for `Partition`
//! lives in the partition ledger (see [`crate::Queryable::partition`]).

use crate::error::{Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// Small tolerance so that spending exactly the remaining budget succeeds
/// despite floating-point accumulation.
const TOLERANCE: f64 = 1e-9;

/// One recorded spend against an accountant, for auditability. Data owners
/// reviewing a mediated-analysis session can replay what was charged.
#[derive(Debug, Clone, PartialEq)]
pub struct SpendEvent {
    /// ε charged (after stability scaling).
    pub epsilon: f64,
    /// Monotonic sequence number of the charge.
    pub sequence: u64,
}

#[derive(Debug, Default)]
struct AccountantState {
    total: f64,
    spent: f64,
    sequence: u64,
    log: Vec<SpendEvent>,
}

/// The root privacy budget for one protected dataset.
///
/// Thread-safe and cheap to clone (clones share the same budget). All
/// queryables derived from the dataset ultimately charge here.
#[derive(Debug, Clone)]
pub struct Accountant {
    state: Arc<Mutex<AccountantState>>,
}

impl Accountant {
    /// Create an accountant with the given total budget.
    ///
    /// # Panics
    /// Panics if `total` is negative, NaN or infinite; the budget is a
    /// policy decision by the data owner and must be a real number.
    pub fn new(total: f64) -> Self {
        assert!(
            total.is_finite() && total >= 0.0,
            "budget must be finite and non-negative, got {total}"
        );
        Accountant {
            state: Arc::new(Mutex::new(AccountantState {
                total,
                ..AccountantState::default()
            })),
        }
    }

    /// The total budget currently configured (initial grant plus any
    /// later [`Accountant::grant`]s).
    pub fn total(&self) -> f64 {
        self.state.lock().total
    }

    /// Cumulative ε spent so far.
    pub fn spent(&self) -> f64 {
        self.state.lock().spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        let st = self.state.lock();
        (st.total - st.spent).max(0.0)
    }

    /// Enlarge the budget by `extra` ε — a *data-owner* operation, the
    /// basis of the timed-release policies the paper sketches in §7
    /// ("reduce privacy cost with time such that the data is available
    /// longer but the added noise increases with time").
    ///
    /// # Panics
    /// Panics on a negative, NaN or infinite grant.
    pub fn grant(&self, extra: f64) {
        assert!(
            extra.is_finite() && extra >= 0.0,
            "grant must be finite and non-negative, got {extra}"
        );
        self.state.lock().total += extra;
    }

    /// Snapshot of all spends recorded so far.
    pub fn audit_log(&self) -> Vec<SpendEvent> {
        self.state.lock().log.clone()
    }

    /// Attempt to spend `eps`. Fails without side effects if the budget
    /// would be exceeded.
    pub fn charge(&self, eps: f64) -> Result<()> {
        debug_assert!(eps >= 0.0, "negative charge {eps}");
        let mut st = self.state.lock();
        if st.spent + eps > st.total + TOLERANCE {
            return Err(Error::BudgetExceeded {
                requested: eps,
                available: (st.total - st.spent).max(0.0),
            });
        }
        st.spent += eps;
        st.sequence += 1;
        let ev = SpendEvent {
            epsilon: eps,
            sequence: st.sequence,
        };
        st.log.push(ev);
        Ok(())
    }

    /// Return `eps` to the budget. Used internally to roll back partially
    /// applied multi-input charges (e.g. a `Join` whose second input's
    /// budget is exhausted). Refunds are also logged, as negative spends.
    pub(crate) fn refund(&self, eps: f64) {
        debug_assert!(eps >= 0.0);
        let mut st = self.state.lock();
        st.spent = (st.spent - eps).max(0.0);
        st.sequence += 1;
        let ev = SpendEvent {
            epsilon: -eps,
            sequence: st.sequence,
        };
        st.log.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let a = Accountant::new(1.0);
        a.charge(0.25).unwrap();
        a.charge(0.25).unwrap();
        assert!((a.spent() - 0.5).abs() < 1e-12);
        assert!((a.remaining() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exceeding_budget_fails_without_side_effects() {
        let a = Accountant::new(0.5);
        a.charge(0.4).unwrap();
        let err = a.charge(0.2).unwrap_err();
        match err {
            Error::BudgetExceeded {
                requested,
                available,
            } => {
                assert_eq!(requested, 0.2);
                assert!((available - 0.1).abs() < 1e-12);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The failed charge must not have consumed anything.
        assert!((a.spent() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn spending_exactly_the_budget_is_allowed() {
        let a = Accountant::new(1.0);
        for _ in 0..10 {
            a.charge(0.1).unwrap();
        }
        assert!(a.charge(0.01).is_err());
    }

    #[test]
    fn refund_restores_budget_and_is_logged() {
        let a = Accountant::new(1.0);
        a.charge(0.6).unwrap();
        a.refund(0.6);
        assert_eq!(a.spent(), 0.0);
        let log = a.audit_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].epsilon, 0.6);
        assert_eq!(log[1].epsilon, -0.6);
        assert!(log[1].sequence > log[0].sequence);
    }

    #[test]
    fn clones_share_the_budget() {
        let a = Accountant::new(1.0);
        let b = a.clone();
        a.charge(0.7).unwrap();
        assert!(b.charge(0.7).is_err());
        b.charge(0.3).unwrap();
        assert!((a.spent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_rejects_everything() {
        let a = Accountant::new(0.0);
        assert!(a.charge(1e-6).is_err());
        assert_eq!(a.remaining(), 0.0);
    }

    #[test]
    fn grants_expand_the_budget() {
        let a = Accountant::new(0.5);
        a.charge(0.5).unwrap();
        assert!(a.charge(0.1).is_err());
        a.grant(0.3);
        assert_eq!(a.total(), 0.8);
        a.charge(0.3).unwrap();
        assert!(a.charge(0.01).is_err());
    }

    #[test]
    #[should_panic(expected = "grant must be finite")]
    fn negative_grants_are_rejected() {
        Accountant::new(1.0).grant(-0.5);
    }

    #[test]
    fn concurrent_charges_never_oversubscribe() {
        let a = Accountant::new(10.0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let a = a.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _ = a.charge(0.01);
                    }
                });
            }
        });
        assert!(a.spent() <= a.total() + 1e-6);
    }
}
