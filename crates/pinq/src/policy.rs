//! Data-owner budget policies (paper §7).
//!
//! Differential privacy composes: two analyses with costs c₁ and c₂ cost at
//! most c₁ + c₂ in total, so a data owner "can enforce various policies
//! such as limiting the total privacy cost per analyst or across all
//! analysts. They can also reduce privacy cost (i.e., increase ε) with time
//! such that the data is available longer but the added noise increases
//! with time." This module packages both:
//!
//! * [`SessionManager`] — one dataset, many analysts. Each session charges
//!   *both* the analyst's personal cap and the dataset-wide budget, so a
//!   single analyst is limited even if alone, and no coalition can exceed
//!   the global budget (differential privacy is resilient to collusion:
//!   the combined knowledge of all analysts is bounded by the sum of their
//!   spends, hence by the global budget).
//! * [`TimedRelease`] — a drip policy that grants additional ε to an
//!   accountant as (logical) epochs pass.
//!
//! Two session shapes exist. [`SessionManager::session`] is the original
//! anonymous form: a bare queryable charging `(global, personal)`. The
//! serving layer uses the richer [`SessionManager::open`] lifecycle: a
//! numbered [`Session`] whose charges additionally book against a fresh
//! session-scoped [`Accountant`], giving exact per-session spend readings,
//! a per-session audit stream (bind a sink on [`Session::accountant`]),
//! and a private deterministic noise substream per session.

use crate::budget::Accountant;
use crate::exec::ExecCtx;
use crate::queryable::Queryable;
use crate::rng::NoiseSource;
use dpnet_obs::{now_ns, Event, SessionEvent};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Owner-side registry mediating one protected dataset for many analysts.
///
/// The dataset is held as shared shards: every session over the same trace
/// reuses the same chunks zero-copy, so a serving daemon loads the trace
/// once no matter how many analysts connect.
pub struct SessionManager<T> {
    shards: Vec<Arc<Vec<T>>>,
    noise: NoiseSource,
    global: Accountant,
    per_analyst_cap: f64,
    analysts: Mutex<HashMap<String, Accountant>>,
    ctx: ExecCtx,
    next_session: AtomicU64,
    open: Mutex<HashMap<u64, (Arc<str>, Accountant)>>,
}

/// A point-in-time budget reading for one session (all values are
/// accountant readings — policy metadata, never record data).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpend {
    /// The session's id.
    pub session_id: u64,
    /// The analyst the session belongs to.
    pub analyst: String,
    /// ε spent through this session alone.
    pub session_spent: f64,
    /// ε spent by the analyst across all their sessions.
    pub analyst_spent: f64,
    /// The analyst's lifetime cap.
    pub analyst_cap: f64,
    /// ε spent against the dataset-wide budget (all analysts).
    pub global_spent: f64,
    /// The dataset-wide budget.
    pub global_total: f64,
}

/// One opened analyst session: the unit of mediation the serving layer
/// hands to a connected analyst.
///
/// Aggregations through [`Session::queryable`] charge three budgets
/// transactionally: the session's own accountant (exact per-session
/// spend), the analyst's lifetime cap, and the dataset-wide budget.
/// Queryable-level events route through the session accountant's sink, so
/// binding a sink there ([`Accountant::set_sink`]) yields a live audit
/// stream scoped to exactly this session.
pub struct Session<T> {
    id: u64,
    analyst: Arc<str>,
    acct: Accountant,
    personal: Accountant,
    global: Accountant,
    root: Queryable<T>,
}

impl<T> Session<T> {
    /// The session's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The analyst the session belongs to.
    pub fn analyst(&self) -> &str {
        &self.analyst
    }

    /// The protected view this session queries through.
    pub fn queryable(&self) -> &Queryable<T> {
        &self.root
    }

    /// The session-scoped accountant: exact per-session spend, ring log,
    /// audit export, and the sink all queryable events of this session
    /// route through.
    pub fn accountant(&self) -> &Accountant {
        &self.acct
    }

    /// ε spent through this session alone.
    pub fn spent(&self) -> f64 {
        self.acct.spent()
    }

    /// A point-in-time reading of every budget this session charges.
    pub fn snapshot(&self) -> SessionSpend {
        SessionSpend {
            session_id: self.id,
            analyst: self.analyst.to_string(),
            session_spent: self.acct.spent(),
            analyst_spent: self.personal.spent(),
            analyst_cap: self.personal.total(),
            global_spent: self.global.spent(),
            global_total: self.global.total(),
        }
    }

    /// Write this session's exact spend ledger as JSONL (see
    /// [`Accountant::export_audit_jsonl`]).
    pub fn export_audit_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.acct.export_audit_jsonl(w)
    }
}

impl<T> std::fmt::Debug for Session<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("analyst", &self.analyst)
            .field("session_spent", &self.acct.spent())
            .finish_non_exhaustive()
    }
}

impl<T> SessionManager<T> {
    /// Create a manager with a dataset-wide budget and a per-analyst cap.
    pub fn new(
        records: Vec<T>,
        noise: NoiseSource,
        global_budget: f64,
        per_analyst_cap: f64,
    ) -> Self {
        Self::from_shared_shards(
            vec![Arc::new(records)],
            noise,
            global_budget,
            per_analyst_cap,
        )
    }

    /// [`SessionManager::new`] over pre-chunked shared shards: the serving
    /// path. Sessions over the same trace share the chunks zero-copy.
    pub fn from_shared_shards(
        shards: Vec<Arc<Vec<T>>>,
        noise: NoiseSource,
        global_budget: f64,
        per_analyst_cap: f64,
    ) -> Self {
        SessionManager {
            shards,
            noise,
            global: Accountant::new(global_budget),
            per_analyst_cap,
            analysts: Mutex::new(HashMap::new()),
            ctx: ExecCtx::Sequential,
            next_session: AtomicU64::new(0),
            open: Mutex::new(HashMap::new()),
        }
    }

    /// Set the execution context sessions inherit (e.g. a shared worker
    /// pool). Builder-style; applies to sessions opened afterwards.
    pub fn with_ctx(mut self, ctx: ExecCtx) -> Self {
        self.ctx = ctx;
        self
    }

    /// The dataset-wide accountant (for owner monitoring).
    pub fn global(&self) -> &Accountant {
        &self.global
    }

    /// The per-analyst lifetime cap.
    pub fn per_analyst_cap(&self) -> f64 {
        self.per_analyst_cap
    }

    /// The shared shards backing every session (owner-side handle; useful
    /// for serving layers that expose the same trace elsewhere).
    pub fn shards(&self) -> &[Arc<Vec<T>>] {
        &self.shards
    }

    /// The accountant of one analyst, creating it on first use.
    pub fn analyst_budget(&self, analyst: &str) -> Accountant {
        self.analysts
            .lock()
            .entry(analyst.to_string())
            .or_insert_with(|| Accountant::new(self.per_analyst_cap))
            .clone()
    }

    /// Open an anonymous session for `analyst`: a queryable over the
    /// shared records whose aggregations charge both the analyst's cap and
    /// the global budget. (The lifecycle-tracked form is
    /// [`SessionManager::open`].)
    pub fn session(&self, analyst: &str) -> Queryable<T> {
        let personal = self.analyst_budget(analyst);
        Queryable::new_shared_shards(self.shards.clone(), &[&self.global, &personal], &self.noise)
            .with_ctx(self.ctx.clone())
    }

    /// Open a numbered, closable session for `analyst`.
    ///
    /// Compared to [`SessionManager::session`] the returned [`Session`]
    /// additionally books every charge against a fresh session-scoped
    /// accountant (exact per-session spend + per-session audit stream) and
    /// draws noise from a private deterministic substream, so concurrent
    /// sessions never interleave their noise draws. Emits a
    /// `session`/`opened` event through the owner's (global accountant)
    /// sink.
    pub fn open(&self, analyst: &str) -> Session<T> {
        let personal = self.analyst_budget(analyst);
        // Session accountant cap mirrors the analyst cap: it can never
        // bind before the personal accountant does (the personal one has
        // spend from earlier sessions), it just meters this session.
        let acct = Accountant::new(self.per_analyst_cap);
        let id = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        let name: Arc<str> = Arc::from(analyst);
        let noise = self.noise.substream();
        let root = Queryable::new_shared_shards(
            self.shards.clone(),
            &[&acct, &personal, &self.global],
            &noise,
        )
        .with_ctx(self.ctx.clone())
        .with_label(&format!("{analyst}#{id}"));
        self.open.lock().insert(id, (name.clone(), acct.clone()));
        self.global.sink_handle().emit(|| {
            Event::Session(SessionEvent {
                session_id: id,
                analyst: name.clone(),
                action: "opened",
                session_spent: 0.0,
                at_ns: now_ns(),
            })
        });
        Session {
            id,
            analyst: name,
            acct,
            personal,
            global: self.global.clone(),
            root,
        }
    }

    /// Close session `id`: drop it from the open-session registry and
    /// return its final budget reading. Emits a `session`/`closed` event
    /// through the owner's sink. Returns `None` when no such session is
    /// open (already closed, or never opened here).
    pub fn close(&self, id: u64) -> Option<SessionSpend> {
        let (name, acct) = self.open.lock().remove(&id)?;
        let spend = SessionSpend {
            session_id: id,
            analyst: name.to_string(),
            session_spent: acct.spent(),
            analyst_spent: self.analyst_budget(&name).spent(),
            analyst_cap: self.per_analyst_cap,
            global_spent: self.global.spent(),
            global_total: self.global.total(),
        };
        self.global.sink_handle().emit(|| {
            Event::Session(SessionEvent {
                session_id: id,
                analyst: name.clone(),
                action: "closed",
                session_spent: spend.session_spent,
                at_ns: now_ns(),
            })
        });
        Some(spend)
    }

    /// Number of currently open (lifecycle-tracked) sessions.
    pub fn open_sessions(&self) -> usize {
        self.open.lock().len()
    }

    /// Point-in-time budget readings for every open session, sorted by
    /// session id — the owner's live view of who is spending what.
    pub fn open_session_spends(&self) -> Vec<SessionSpend> {
        let mut out: Vec<SessionSpend> = self
            .open
            .lock()
            .iter()
            .map(|(&id, (name, acct))| SessionSpend {
                session_id: id,
                analyst: name.to_string(),
                session_spent: acct.spent(),
                analyst_spent: self.analyst_budget(name).spent(),
                analyst_cap: self.per_analyst_cap,
                global_spent: self.global.spent(),
                global_total: self.global.total(),
            })
            .collect();
        out.sort_by_key(|s| s.session_id);
        out
    }

    /// Names of analysts who have opened sessions, with their spends.
    pub fn ledger(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .analysts
            .lock()
            .iter()
            .map(|(name, acct)| (name.clone(), acct.spent()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl<T> std::fmt::Debug for SessionManager<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("global_spent", &self.global.spent())
            .field("global_total", &self.global.total())
            .field("per_analyst_cap", &self.per_analyst_cap)
            .field("open_sessions", &self.open.lock().len())
            .finish_non_exhaustive()
    }
}

/// A drip policy: grant `per_epoch` additional ε to an accountant each time
/// the (logical) clock advances, up to an optional ceiling.
///
/// The trade-off the paper describes: granting more budget over time keeps
/// old data useful for longer, at the price of more cumulative disclosure.
#[derive(Debug)]
pub struct TimedRelease {
    accountant: Accountant,
    per_epoch: f64,
    ceiling: Option<f64>,
    current_epoch: Mutex<u64>,
}

impl TimedRelease {
    /// Create a drip policy over `accountant`, granting `per_epoch` ε per
    /// epoch, never letting the total exceed `ceiling` (if given).
    pub fn new(accountant: Accountant, per_epoch: f64, ceiling: Option<f64>) -> Self {
        assert!(per_epoch.is_finite() && per_epoch >= 0.0);
        TimedRelease {
            accountant,
            per_epoch,
            ceiling,
            current_epoch: Mutex::new(0),
        }
    }

    /// Advance the logical clock to `epoch`, granting for every epoch that
    /// passed. Idempotent for equal or earlier epochs.
    pub fn advance_to(&self, epoch: u64) {
        let mut cur = self.current_epoch.lock();
        if epoch <= *cur {
            return;
        }
        let steps = epoch - *cur;
        *cur = epoch;
        let mut grant = self.per_epoch * steps as f64;
        if let Some(cap) = self.ceiling {
            grant = grant.min((cap - self.accountant.total()).max(0.0));
        }
        if grant > 0.0 {
            self.accountant.grant(grant);
        }
    }

    /// The epoch the policy has been advanced to.
    pub fn epoch(&self) -> u64 {
        *self.current_epoch.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_obs::MemorySink;

    fn manager() -> SessionManager<u32> {
        SessionManager::new(
            (0..1000).collect(),
            NoiseSource::seeded(7),
            1.0, // global
            0.4, // per analyst
        )
    }

    #[test]
    fn personal_caps_bind_before_the_global_budget() {
        let m = manager();
        let alice = m.session("alice");
        alice.noisy_count(0.4).unwrap();
        // Alice is done for; the dataset is not.
        assert!(alice.noisy_count(0.1).is_err());
        let bob = m.session("bob");
        bob.noisy_count(0.4).unwrap();
        assert!((m.global().spent() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn coalitions_cannot_exceed_the_global_budget() {
        let m = manager();
        // Three analysts, 0.4 each, would be 1.2 — but the global budget is
        // 1.0, so the third is cut short.
        m.session("a").noisy_count(0.4).unwrap();
        m.session("b").noisy_count(0.4).unwrap();
        let c = m.session("c");
        assert!(c.noisy_count(0.4).is_err());
        // The failed attempt refunded c's personal budget too.
        assert_eq!(m.analyst_budget("c").spent(), 0.0);
        c.noisy_count(0.2).unwrap();
        assert!((m.global().spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sessions_for_the_same_analyst_share_a_cap() {
        let m = manager();
        let s1 = m.session("carol");
        let s2 = m.session("carol");
        s1.noisy_count(0.3).unwrap();
        assert!(s2.noisy_count(0.3).is_err());
        s2.noisy_count(0.1).unwrap();
        assert!((m.analyst_budget("carol").spent() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ledger_reports_per_analyst_spends() {
        let m = manager();
        m.session("zoe").noisy_count(0.2).unwrap();
        m.session("adam").noisy_count(0.1).unwrap();
        let ledger = m.ledger();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger[0].0, "adam");
        assert!((ledger[0].1 - 0.1).abs() < 1e-12);
        assert!((ledger[1].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sharded_and_flat_managers_agree() {
        // The same records pre-chunked: identical releases and spends.
        let flat = manager();
        let records: Vec<u32> = (0..1000).collect();
        let sharded = SessionManager::from_shared_shards(
            vec![
                Arc::new(records[..300].to_vec()),
                Arc::new(records[300..].to_vec()),
            ],
            NoiseSource::seeded(7),
            1.0,
            0.4,
        );
        let a = flat.session("alice").noisy_count(0.2).unwrap();
        let b = sharded.session("alice").noisy_count(0.2).unwrap();
        assert_eq!(a, b);
        assert_eq!(flat.global().spent(), sharded.global().spent());
    }

    #[test]
    fn open_sessions_meter_their_own_spend() {
        let m = manager();
        let s1 = m.open("dana");
        let s2 = m.open("dana");
        assert_ne!(s1.id(), s2.id());
        assert_eq!(m.open_sessions(), 2);

        s1.queryable().noisy_count(0.25).unwrap();
        s2.queryable().noisy_count(0.1).unwrap();
        assert!((s1.spent() - 0.25).abs() < 1e-12);
        assert!((s2.spent() - 0.1).abs() < 1e-12);
        // The personal cap still aggregates across the analyst's sessions.
        assert!((m.analyst_budget("dana").spent() - 0.35).abs() < 1e-12);
        assert!(s2.queryable().noisy_count(0.25).is_err());

        let snap = s1.snapshot();
        assert_eq!(snap.analyst, "dana");
        assert!((snap.session_spent - 0.25).abs() < 1e-12);
        assert!((snap.analyst_spent - 0.35).abs() < 1e-12);
        assert!((snap.analyst_cap - 0.4).abs() < 1e-12);

        let closed = m.close(s1.id()).expect("open");
        assert!((closed.session_spent - 0.25).abs() < 1e-12);
        assert_eq!(m.open_sessions(), 1);
        assert!(m.close(s1.id()).is_none(), "double close is rejected");
    }

    #[test]
    fn failed_charges_refund_every_budget_of_an_open_session() {
        let m = manager();
        let s = m.open("erin");
        s.queryable().noisy_count(0.3).unwrap();
        // 0.2 more would pass the session accountant but not the personal
        // cap: the transactional walk must refund the session accountant.
        assert!(s.queryable().noisy_count(0.2).is_err());
        assert!((s.spent() - 0.3).abs() < 1e-12);
        assert!((m.analyst_budget("erin").spent() - 0.3).abs() < 1e-12);
        assert!((m.global().spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn session_sink_scopes_events_to_one_session() {
        let m = manager();
        let s1 = m.open("faye");
        let s2 = m.open("faye");
        let sink = Arc::new(MemorySink::new());
        s1.accountant().set_sink(Some(sink.clone()));
        s1.queryable().noisy_count(0.1).unwrap();
        s2.queryable().noisy_count(0.2).unwrap();
        let events = sink.events();
        assert!(!events.is_empty());
        // Only session 1's activity reached the session-scoped sink: every
        // charge there is the 0.1 one.
        for e in &events {
            if let Event::Charge(c) = e {
                assert!((c.epsilon - 0.1).abs() < 1e-12, "foreign charge {c:?}");
            }
        }
    }

    #[test]
    fn open_session_spends_lists_live_readings() {
        let m = manager();
        let s1 = m.open("gil");
        let _s2 = m.open("hana");
        s1.queryable().noisy_count(0.2).unwrap();
        let spends = m.open_session_spends();
        assert_eq!(spends.len(), 2);
        assert_eq!(spends[0].session_id, s1.id());
        assert!((spends[0].session_spent - 0.2).abs() < 1e-12);
        assert_eq!(spends[1].analyst, "hana");
        assert_eq!(spends[1].session_spent, 0.0);
    }

    #[test]
    fn open_sessions_draw_private_noise_substreams() {
        // Two managers seeded identically: the n-th opened session releases
        // the same values regardless of what *other* sessions drew first —
        // substreams never interleave.
        let m1 = manager();
        let a1 = m1.open("a");
        let b1 = m1.open("b");
        let x = a1.queryable().noisy_count(0.01).unwrap();
        let y = b1.queryable().noisy_count(0.01).unwrap();

        let m2 = manager();
        let a2 = m2.open("a");
        let b2 = m2.open("b");
        // Reverse query order: same releases.
        let y2 = b2.queryable().noisy_count(0.01).unwrap();
        let x2 = a2.queryable().noisy_count(0.01).unwrap();
        assert_eq!(x, x2);
        assert_eq!(y, y2);
    }

    #[test]
    fn timed_release_drips_budget() {
        let acct = Accountant::new(0.1);
        let policy = TimedRelease::new(acct.clone(), 0.05, Some(0.3));
        acct.charge(0.1).unwrap();
        assert!(acct.charge(0.05).is_err());

        policy.advance_to(1);
        acct.charge(0.05).unwrap();

        // Jumping several epochs grants for each, up to the ceiling.
        policy.advance_to(10);
        assert!((acct.total() - 0.3).abs() < 1e-12, "total {}", acct.total());

        // Re-advancing to the past or present grants nothing.
        policy.advance_to(5);
        policy.advance_to(10);
        assert!((acct.total() - 0.3).abs() < 1e-12);
        assert_eq!(policy.epoch(), 10);
    }

    #[test]
    fn timed_release_without_ceiling_grows_unbounded() {
        let acct = Accountant::new(0.0);
        let policy = TimedRelease::new(acct.clone(), 1.0, None);
        policy.advance_to(100);
        assert!((acct.total() - 100.0).abs() < 1e-9);
    }
}
