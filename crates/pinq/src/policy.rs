//! Data-owner budget policies (paper §7).
//!
//! Differential privacy composes: two analyses with costs c₁ and c₂ cost at
//! most c₁ + c₂ in total, so a data owner "can enforce various policies
//! such as limiting the total privacy cost per analyst or across all
//! analysts. They can also reduce privacy cost (i.e., increase ε) with time
//! such that the data is available longer but the added noise increases
//! with time." This module packages both:
//!
//! * [`SessionManager`] — one dataset, many analysts. Each session charges
//!   *both* the analyst's personal cap and the dataset-wide budget, so a
//!   single analyst is limited even if alone, and no coalition can exceed
//!   the global budget (differential privacy is resilient to collusion:
//!   the combined knowledge of all analysts is bounded by the sum of their
//!   spends, hence by the global budget).
//! * [`TimedRelease`] — a drip policy that grants additional ε to an
//!   accountant as (logical) epochs pass.

use crate::budget::Accountant;
use crate::queryable::Queryable;
use crate::rng::NoiseSource;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Owner-side registry mediating one protected dataset for many analysts.
pub struct SessionManager<T> {
    records: Arc<Vec<T>>,
    noise: NoiseSource,
    global: Accountant,
    per_analyst_cap: f64,
    analysts: Mutex<HashMap<String, Accountant>>,
}

impl<T> SessionManager<T> {
    /// Create a manager with a dataset-wide budget and a per-analyst cap.
    pub fn new(
        records: Vec<T>,
        noise: NoiseSource,
        global_budget: f64,
        per_analyst_cap: f64,
    ) -> Self {
        SessionManager {
            records: Arc::new(records),
            noise,
            global: Accountant::new(global_budget),
            per_analyst_cap,
            analysts: Mutex::new(HashMap::new()),
        }
    }

    /// The dataset-wide accountant (for owner monitoring).
    pub fn global(&self) -> &Accountant {
        &self.global
    }

    /// The accountant of one analyst, creating it on first use.
    pub fn analyst_budget(&self, analyst: &str) -> Accountant {
        self.analysts
            .lock()
            .entry(analyst.to_string())
            .or_insert_with(|| Accountant::new(self.per_analyst_cap))
            .clone()
    }

    /// Open a session for `analyst`: a queryable over the shared records
    /// whose aggregations charge both the analyst's cap and the global
    /// budget.
    pub fn session(&self, analyst: &str) -> Queryable<T> {
        let personal = self.analyst_budget(analyst);
        Queryable::new_shared(
            self.records.clone(),
            &[&self.global, &personal],
            &self.noise,
        )
    }

    /// Names of analysts who have opened sessions, with their spends.
    pub fn ledger(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .analysts
            .lock()
            .iter()
            .map(|(name, acct)| (name.clone(), acct.spent()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl<T> std::fmt::Debug for SessionManager<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("global_spent", &self.global.spent())
            .field("global_total", &self.global.total())
            .field("per_analyst_cap", &self.per_analyst_cap)
            .finish_non_exhaustive()
    }
}

/// A drip policy: grant `per_epoch` additional ε to an accountant each time
/// the (logical) clock advances, up to an optional ceiling.
///
/// The trade-off the paper describes: granting more budget over time keeps
/// old data useful for longer, at the price of more cumulative disclosure.
#[derive(Debug)]
pub struct TimedRelease {
    accountant: Accountant,
    per_epoch: f64,
    ceiling: Option<f64>,
    current_epoch: Mutex<u64>,
}

impl TimedRelease {
    /// Create a drip policy over `accountant`, granting `per_epoch` ε per
    /// epoch, never letting the total exceed `ceiling` (if given).
    pub fn new(accountant: Accountant, per_epoch: f64, ceiling: Option<f64>) -> Self {
        assert!(per_epoch.is_finite() && per_epoch >= 0.0);
        TimedRelease {
            accountant,
            per_epoch,
            ceiling,
            current_epoch: Mutex::new(0),
        }
    }

    /// Advance the logical clock to `epoch`, granting for every epoch that
    /// passed. Idempotent for equal or earlier epochs.
    pub fn advance_to(&self, epoch: u64) {
        let mut cur = self.current_epoch.lock();
        if epoch <= *cur {
            return;
        }
        let steps = epoch - *cur;
        *cur = epoch;
        let mut grant = self.per_epoch * steps as f64;
        if let Some(cap) = self.ceiling {
            grant = grant.min((cap - self.accountant.total()).max(0.0));
        }
        if grant > 0.0 {
            self.accountant.grant(grant);
        }
    }

    /// The epoch the policy has been advanced to.
    pub fn epoch(&self) -> u64 {
        *self.current_epoch.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> SessionManager<u32> {
        SessionManager::new(
            (0..1000).collect(),
            NoiseSource::seeded(7),
            1.0, // global
            0.4, // per analyst
        )
    }

    #[test]
    fn personal_caps_bind_before_the_global_budget() {
        let m = manager();
        let alice = m.session("alice");
        alice.noisy_count(0.4).unwrap();
        // Alice is done for; the dataset is not.
        assert!(alice.noisy_count(0.1).is_err());
        let bob = m.session("bob");
        bob.noisy_count(0.4).unwrap();
        assert!((m.global().spent() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn coalitions_cannot_exceed_the_global_budget() {
        let m = manager();
        // Three analysts, 0.4 each, would be 1.2 — but the global budget is
        // 1.0, so the third is cut short.
        m.session("a").noisy_count(0.4).unwrap();
        m.session("b").noisy_count(0.4).unwrap();
        let c = m.session("c");
        assert!(c.noisy_count(0.4).is_err());
        // The failed attempt refunded c's personal budget too.
        assert_eq!(m.analyst_budget("c").spent(), 0.0);
        c.noisy_count(0.2).unwrap();
        assert!((m.global().spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sessions_for_the_same_analyst_share_a_cap() {
        let m = manager();
        let s1 = m.session("carol");
        let s2 = m.session("carol");
        s1.noisy_count(0.3).unwrap();
        assert!(s2.noisy_count(0.3).is_err());
        s2.noisy_count(0.1).unwrap();
        assert!((m.analyst_budget("carol").spent() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ledger_reports_per_analyst_spends() {
        let m = manager();
        m.session("zoe").noisy_count(0.2).unwrap();
        m.session("adam").noisy_count(0.1).unwrap();
        let ledger = m.ledger();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger[0].0, "adam");
        assert!((ledger[0].1 - 0.1).abs() < 1e-12);
        assert!((ledger[1].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn timed_release_drips_budget() {
        let acct = Accountant::new(0.1);
        let policy = TimedRelease::new(acct.clone(), 0.05, Some(0.3));
        acct.charge(0.1).unwrap();
        assert!(acct.charge(0.05).is_err());

        policy.advance_to(1);
        acct.charge(0.05).unwrap();

        // Jumping several epochs grants for each, up to the ceiling.
        policy.advance_to(10);
        assert!((acct.total() - 0.3).abs() < 1e-12, "total {}", acct.total());

        // Re-advancing to the past or present grants nothing.
        policy.advance_to(5);
        policy.advance_to(10);
        assert!((acct.total() - 0.3).abs() < 1e-12);
        assert_eq!(policy.epoch(), 10);
    }

    #[test]
    fn timed_release_without_ceiling_grows_unbounded() {
        let acct = Accountant::new(0.0);
        let policy = TimedRelease::new(acct.clone(), 1.0, None);
        policy.advance_to(100);
        assert!((acct.total() - 100.0).abs() < 1e-9);
    }
}
