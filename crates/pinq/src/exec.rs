//! The parallel execution layer: a reusable worker pool with deterministic
//! task scheduling semantics.
//!
//! PINQ's declarative form is what lets analyses scale out (the paper's
//! footnote: "because it is based on LINQ, the analyses will also
//! automatically scale to a cluster (DryadLINQ)"). The single-machine analog
//! is an [`ExecPool`]: a validated worker count plus a work-claiming
//! protocol that every parallel kernel in the engine shares.
//!
//! ## Execution model
//!
//! A pool run takes `n` independent tasks. Workers claim task indices from a
//! shared atomic counter — the single-injector analog of work stealing: an
//! idle worker always finds the next unclaimed task, so load balances even
//! when task costs are skewed. Each worker writes its result directly into
//! a preallocated per-task slot (one writer per slot, so the slot locks are
//! never contended), and after the workers join the pool unwraps the slots
//! **in task order**. There is no result channel and no post-join drain
//! loop — completing in order costs nothing beyond the slot write. Threads
//! are scoped ([`std::thread::scope`]), so tasks may freely borrow from the
//! caller's stack; the crate-wide `forbid(unsafe_code)` holds.
//!
//! ## Determinism contract
//!
//! Every kernel built on the pool must produce bit-for-bit identical output
//! for *any* worker count at a fixed seed. Two rules make that hold:
//!
//! 1. **Fixed decomposition, ordered merge.** Work is split at positions
//!    that depend only on the input length and the pool's
//!    [chunk size](ExecPool::chunk_size) — never on the worker count — and
//!    partial results are merged in task-index order. Chunked reductions
//!    (e.g. a clamped sum) therefore associate identically no matter which
//!    worker computed which chunk.
//! 2. **No racing on randomness.** Tasks that draw noise get a private
//!    [`crate::rng::NoiseSource`] substream, derived by the coordinating
//!    thread in task order before dispatch (see
//!    [`NoiseSource::substream`](crate::rng::NoiseSource::substream)).
//!
//! Privacy semantics are untouched: the pool never talks to the accountant;
//! kernels charge exactly what their sequential counterparts charge, and the
//! budget/ledger types are already thread-safe for the concurrent spends.

use crate::error::{Error, Result};
use dpnet_obs::span;
use dpnet_obs::{Histogram, MetricsRegistry};
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Metric handles a profiled pool run resolves once (registry lookups are a
/// mutex + map walk — fine per run, not per task). Only materialized when
/// [`dpnet_obs::profiling_enabled`]; unprofiled runs skip every lookup.
struct RunTelemetry {
    /// Per worker per run: ns spent inside task closures.
    busy: Arc<Histogram>,
    /// Per worker per run: worker wall-clock minus busy time (claim
    /// contention plus scheduling tail).
    idle: Arc<Histogram>,
    /// Per run: ns spent unwrapping the ordered result slots after the
    /// workers joined (workers write slots directly, so this is a single
    /// move pass, not a drain loop).
    reassembly: Arc<Histogram>,
    /// Tasks claimed beyond a worker's fair share ⌊n/threads⌋ — the
    /// work-stealing analog. Task counts are data-dependent (input sizes
    /// leak through them), so owner-side builds only.
    #[cfg(feature = "trusted-owner")]
    steals: Arc<dpnet_obs::Counter>,
    /// Unclaimed tasks remaining at each claim. Data-dependent, as above.
    #[cfg(feature = "trusted-owner")]
    queue_depth: Arc<Histogram>,
}

impl RunTelemetry {
    fn resolve() -> Self {
        let reg = MetricsRegistry::global();
        RunTelemetry {
            busy: reg.histogram("exec.worker.busy_ns"),
            idle: reg.histogram("exec.worker.idle_ns"),
            reassembly: reg.histogram("exec.reassembly_wait_ns"),
            #[cfg(feature = "trusted-owner")]
            steals: reg.counter("exec.steals"),
            #[cfg(feature = "trusted-owner")]
            queue_depth: reg.histogram("exec.queue_depth"),
        }
    }
}

/// Default number of records per chunk for chunked kernels. Chosen large
/// enough that per-task overhead (claim, channel send) is negligible and
/// small enough that a few hundred thousand records still split into enough
/// tasks to balance across workers.
pub const DEFAULT_CHUNK: usize = 8192;

/// A reusable worker-pool configuration for parallel kernels.
///
/// The pool is cheap to clone and carries no threads of its own: each
/// [`ExecPool::run`] spawns scoped workers for the duration of the call
/// (borrowed data in tasks rules out long-lived `'static` threads under
/// `forbid(unsafe_code)`).
///
/// ```
/// use pinq::exec::ExecPool;
///
/// let pool = ExecPool::new(4).unwrap();
/// let squares = pool.run(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
///
/// // Zero workers is an explicit error, not a silent clamp.
/// assert!(ExecPool::new(0).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ExecPool {
    workers: usize,
    chunk: usize,
}

impl ExecPool {
    /// Create a pool with `workers` worker threads per run.
    ///
    /// `workers: 0` returns [`Error::InvalidWorkers`].
    pub fn new(workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(Error::InvalidWorkers(0));
        }
        Ok(ExecPool {
            workers,
            chunk: DEFAULT_CHUNK,
        })
    }

    /// The single-worker pool: every kernel degenerates to a plain
    /// sequential loop on the calling thread.
    pub fn sequential() -> Self {
        ExecPool {
            workers: 1,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Number of workers a run may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Records per chunk used by chunked kernels.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Override the chunk size (mainly for tests and benchmarks).
    ///
    /// Chunk boundaries are part of a kernel's output identity for floating
    /// point reductions: runs with *different* chunk sizes may associate
    /// sums differently. Runs with different worker counts and the same
    /// chunk size always agree.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk = chunk;
        self
    }

    /// Fixed-size chunk ranges over `len` items (worker-count independent).
    pub fn chunks(&self, len: usize) -> Vec<Range<usize>> {
        chunk_ranges(len, self.chunk)
    }

    /// Apply `f` to every task, in parallel, returning results in task
    /// order. `f` receives the task index and a borrow of the task.
    pub fn run<T, R, F>(&self, tasks: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Send + Sync,
    {
        self.run_indexed(tasks.len(), |i| f(i, &tasks[i]))
    }

    /// Apply `f` to every index in `0..n`, in parallel, returning results
    /// in index order.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let threads = self.workers.min(n);
        // One relaxed atomic load; everything telemetry-related hides
        // behind it so the unprofiled path stays byte-for-byte the old one.
        let profiled = span::profiling_enabled();
        if threads == 1 {
            if !profiled {
                return (0..n).map(f).collect();
            }
            let _run = span::enter("exec/run");
            return (0..n)
                .map(|i| {
                    let _task = span::enter("exec/task");
                    f(i)
                })
                .collect();
        }

        let _run = profiled.then(|| span::enter("exec/run"));
        let telemetry = profiled.then(RunTelemetry::resolve);
        let fair_share = n / threads;
        let next = AtomicUsize::new(0);
        // One slot per task, written directly by whichever worker claims the
        // task. Exactly one worker ever touches a given slot, so the lock is
        // uncontended — it exists only to satisfy `forbid(unsafe_code)`.
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..threads {
                let next = &next;
                let f = &f;
                let slots = &slots;
                let telemetry = telemetry.as_ref();
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut busy_ns = 0u64;
                    let mut claims = 0usize;
                    if telemetry.is_some() {
                        span::set_track_name(&format!("worker-{w}"));
                    }
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        claims += 1;
                        if let Some(t) = telemetry {
                            #[cfg(feature = "trusted-owner")]
                            t.queue_depth.record_ns((n - i) as u64);
                            let _ = t;
                            let task_start = Instant::now();
                            let r = {
                                let _task = span::enter("exec/task");
                                f(i)
                            };
                            busy_ns += task_start.elapsed().as_nanos() as u64;
                            *slots[i].lock() = Some(r);
                        } else {
                            *slots[i].lock() = Some(f(i));
                        }
                    }
                    if let Some(t) = telemetry {
                        t.busy.record_ns(busy_ns);
                        let wall_ns = started.elapsed().as_nanos() as u64;
                        t.idle.record_ns(wall_ns.saturating_sub(busy_ns));
                        #[cfg(feature = "trusted-owner")]
                        if claims > fair_share {
                            t.steals.add((claims - fair_share) as u64);
                        }
                    }
                    let _ = (claims, fair_share);
                });
            }
        });

        let drain_start = telemetry.as_ref().map(|_| Instant::now());
        let out: Vec<R> = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("every task index is claimed exactly once")
            })
            .collect();
        if let (Some(t), Some(at)) = (&telemetry, drain_start) {
            t.reassembly.record_ns(at.elapsed().as_nanos() as u64);
        }
        out
    }
}

/// The execution context a [`crate::Queryable`] carries: where its plans
/// materialize and where its chunked aggregation kernels run.
///
/// One code path serves both modes — every operator consults the context at
/// its barrier instead of existing in `op`/`op_with` twin form. The pool
/// variant *owns* a (cheap, thread-less) [`ExecPool`] clone so the context
/// can ride inside `Queryable` without a lifetime parameter.
///
/// Floating-point identity: the context is part of a released value's
/// identity for chunked reductions. `Sequential` sums flat;
/// `Pool` sums per fixed-size chunk and combines in chunk order — identical
/// for **any worker count** (even one), but possibly an ulp away from the
/// flat sequential sum. This mirrors the old `noisy_sum_clamped` versus
/// `noisy_sum_clamped_with` split exactly.
///
/// ```
/// use pinq::{ExecCtx, ExecPool};
///
/// let ctx = ExecCtx::pool(&ExecPool::new(4).unwrap());
/// assert_eq!(ctx.workers(), 4);
/// assert_eq!(ExecCtx::Sequential.workers(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub enum ExecCtx {
    /// Run on the calling thread; flat (unchunked) reductions.
    #[default]
    Sequential,
    /// Run chunked kernels on a worker pool; deterministic for any worker
    /// count at a fixed chunk size.
    Pool(ExecPool),
}

impl ExecCtx {
    /// A pool-backed context (clones the pool's configuration).
    pub fn pool(pool: &ExecPool) -> Self {
        ExecCtx::Pool(pool.clone())
    }

    /// Worker threads a kernel run may use (1 when sequential).
    pub fn workers(&self) -> usize {
        match self {
            ExecCtx::Sequential => 1,
            ExecCtx::Pool(p) => p.workers(),
        }
    }

    /// The backing pool, when parallel.
    pub fn as_pool(&self) -> Option<&ExecPool> {
        match self {
            ExecCtx::Sequential => None,
            ExecCtx::Pool(p) => Some(p),
        }
    }

    /// Stable mode string used in plan events.
    pub fn mode(&self) -> &'static str {
        match self {
            ExecCtx::Sequential => "sequential",
            ExecCtx::Pool(_) => "pool",
        }
    }
}

/// Split `0..len` into consecutive ranges of at most `chunk` items. The
/// split depends only on `len` and `chunk` — see the module docs on why
/// that matters for determinism.
///
/// # Panics
/// Panics if `chunk` is zero.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_is_an_error() {
        assert_eq!(ExecPool::new(0).unwrap_err(), Error::InvalidWorkers(0));
        let msg = ExecPool::new(0).unwrap_err().to_string();
        assert!(msg.contains("at least 1"), "{msg}");
    }

    #[test]
    fn results_come_back_in_task_order() {
        let pool = ExecPool::new(8).unwrap();
        let tasks: Vec<usize> = (0..1000).collect();
        let out = pool.run(&tasks, |i, &t| {
            assert_eq!(i, t);
            t * 2
        });
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list_is_fine() {
        let pool = ExecPool::new(4).unwrap();
        let out: Vec<u32> = pool.run(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let pool = ExecPool::new(64).unwrap();
        let out = pool.run(&[10u32, 20], |_, &x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn sequential_pool_runs_on_the_calling_thread() {
        let pool = ExecPool::sequential();
        let caller = std::thread::current().id();
        let ids = pool.run_indexed(4, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn uneven_task_costs_still_complete() {
        // Skewed costs: the atomic claim counter load-balances; all results
        // land in the right slots.
        let pool = ExecPool::new(4).unwrap();
        let out = pool.run_indexed(64, |i| {
            let spin = if i % 7 == 0 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_ranges_tile_the_input_exactly() {
        for len in [0usize, 1, 10, 8192, 8193, 50_000] {
            let ranges = chunk_ranges(len, 8192);
            let mut covered = 0;
            for (i, r) in ranges.iter().enumerate() {
                assert_eq!(r.start, covered, "gap before range {i}");
                assert!(r.end > r.start || len == 0);
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn chunk_ranges_are_worker_count_independent() {
        // The decomposition is a function of (len, chunk) only.
        let a = ExecPool::new(1).unwrap().chunks(100_000);
        let b = ExecPool::new(16).unwrap().chunks(100_000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        chunk_ranges(10, 0);
    }

    #[test]
    fn run_is_deterministic_across_worker_counts() {
        // A pure reduction over fixed chunks: identical for 1, 2, 8 workers.
        let data: Vec<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
        let reduce = |workers: usize| -> Vec<f64> {
            let pool = ExecPool::new(workers).unwrap().with_chunk_size(4096);
            let ranges = pool.chunks(data.len());
            pool.run(&ranges, |_, r| data[r.clone()].iter().sum::<f64>())
        };
        let one = reduce(1);
        assert_eq!(one, reduce(2));
        assert_eq!(one, reduce(8));
    }
}
