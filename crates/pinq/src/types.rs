//! Record types produced by grouping transformations.

/// A group of records sharing a key, produced by
/// [`Queryable::group_by`](crate::Queryable::group_by).
///
/// A `Group` is a *single record* of the transformed dataset: aggregations
/// over grouped data count groups, not members, which is exactly what caps
/// the privacy impact of large groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group<K, T> {
    /// The grouping key.
    pub key: K,
    /// Members of the group, in input order.
    pub items: Vec<T>,
}

impl<K, T> Group<K, T> {
    /// Number of member records.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the group has no members (cannot occur for groups produced
    /// by `group_by`, but can for user-constructed groups).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// One output record of [`Queryable::join`](crate::Queryable::join).
///
/// PINQ's `Join` is not a standard equijoin: both inputs are grouped by the
/// join key first, and the output contains one record per key holding the
/// *entire* matched groups. However large the groups, the pair counts as a
/// single record in subsequent aggregations, which is what makes the join
/// compatible with differential privacy (paper §2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGroup<K, L, R> {
    /// The join key.
    pub key: K,
    /// All left-input records with this key.
    pub left: Vec<L>,
    /// All right-input records with this key.
    pub right: Vec<R>,
}

impl<K, L, R> JoinGroup<K, L, R> {
    /// Apply a function to every (left, right) pair, as a convenience for
    /// analyses that conceptually want equijoin semantics within the
    /// privacy-bounded pair-of-groups representation.
    pub fn pairs<'a>(&'a self) -> impl Iterator<Item = (&'a L, &'a R)> + 'a {
        self.left
            .iter()
            .flat_map(move |l| self.right.iter().map(move |r| (l, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_len_and_empty() {
        let g = Group {
            key: 1u8,
            items: vec!["a", "b"],
        };
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        let e: Group<u8, &str> = Group {
            key: 2,
            items: vec![],
        };
        assert!(e.is_empty());
    }

    #[test]
    fn join_pairs_is_cartesian_within_key() {
        let j = JoinGroup {
            key: 0u8,
            left: vec![1, 2],
            right: vec![10, 20, 30],
        };
        let pairs: Vec<(i32, i32)> = j.pairs().map(|(l, r)| (*l, *r)).collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(2, 30)));
    }
}
