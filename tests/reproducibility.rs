//! Determinism guarantees: seeded generators and seeded noise make whole
//! experiment pipelines bit-for-bit reproducible, which the harness (and
//! EXPERIMENTS.md) relies on.

use dpnet::pinq::{Accountant, NoiseSource, Queryable};
use dpnet::toolkit::cdf::cdf_partition;
use dpnet::trace::gen::hotspot::{generate, HotspotConfig};
use dpnet::trace::gen::isp::{self, IspConfig};
use dpnet::trace::gen::scatter::{self, ScatterConfig};

fn cfg() -> HotspotConfig {
    HotspotConfig {
        web_flows: 120,
        worms_above_threshold: 2,
        worms_below_threshold: 1,
        stepping_stone_pairs: 1,
        interactive_decoys: 1,
        itemset_hosts: 8,
        ..HotspotConfig::default()
    }
}

#[test]
fn hotspot_generation_is_bit_reproducible() {
    let a = generate(cfg());
    let b = generate(cfg());
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.truth.payload_counts, b.truth.payload_counts);
    assert_eq!(a.truth.worms.len(), b.truth.worms.len());
}

#[test]
fn different_seeds_give_different_traces() {
    let a = generate(cfg());
    let b = generate(HotspotConfig {
        seed: cfg().seed + 1,
        ..cfg()
    });
    assert_ne!(a.packets, b.packets);
}

#[test]
fn isp_and_scatter_generators_are_reproducible() {
    let i1 = isp::generate(IspConfig {
        links: 20,
        windows: 48,
        ..IspConfig::default()
    });
    let i2 = isp::generate(IspConfig {
        links: 20,
        windows: 48,
        ..IspConfig::default()
    });
    assert_eq!(i1.volumes, i2.volumes);

    let s1 = scatter::generate(ScatterConfig {
        ips: 500,
        ..ScatterConfig::default()
    });
    let s2 = scatter::generate(ScatterConfig {
        ips: 500,
        ..ScatterConfig::default()
    });
    assert_eq!(s1.records, s2.records);
}

#[test]
fn seeded_private_pipelines_release_identical_values() {
    let trace = generate(cfg());
    let run = || -> Vec<f64> {
        let budget = Accountant::new(10.0);
        let noise = NoiseSource::seeded(0xDE7E12);
        let q = Queryable::new(trace.packets.clone(), &budget, &noise);
        let values = q.map(|p| (p.len / 100) as usize);
        cdf_partition(&values, 16, 0.5).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn noise_seed_changes_only_the_noise() {
    let trace = generate(cfg());
    let run = |seed: u64| -> f64 {
        let budget = Accountant::new(10.0);
        let noise = NoiseSource::seeded(seed);
        let q = Queryable::new(trace.packets.clone(), &budget, &noise);
        q.noisy_count(1.0).unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different noise seeds must perturb differently");
    // But both stay within plausible noise of each other.
    assert!((a - b).abs() < 40.0);
}
