//! The `kernel-seal` gate: `scripts/kernel_seal.sh` proves no module
//! outside `pinq::kernel` constructs or mutates budget/ledger state.
//!
//! Two directions, both required by the gate's contract:
//!
//! * **positive** — the real repository is sealed today (the script exits
//!   0), so the CI step that runs it gates every future change;
//! * **negative** — injecting a direct budget mutation outside the kernel
//!   into a scratch copy makes the script fail *and* name the offending
//!   path, so a violation is actionable, not just red.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_seal(root: &Path) -> (bool, String) {
    let out = Command::new("bash")
        .arg(repo_root().join("scripts/kernel_seal.sh"))
        .arg(root)
        .output()
        .expect("kernel_seal.sh runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn repository_is_sealed() {
    let (ok, text) = run_seal(&repo_root());
    assert!(
        ok,
        "kernel-seal reports violations in the real tree:\n{text}"
    );
    assert!(
        text.contains("kernel-seal: OK"),
        "unexpected output:\n{text}"
    );
}

#[test]
fn injected_budget_mutation_fails_the_gate_naming_the_path() {
    // Build a minimal scratch tree: only the layout the script scans.
    let scratch = std::env::temp_dir().join("dpnet-kernel-seal-negative");
    let offender_rel = "crates/dpnet-toolkit/src/evil.rs";
    let offender = scratch.join(offender_rel);
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(offender.parent().unwrap()).unwrap();
    // A sealed file too, proving the failure is attributed precisely.
    std::fs::create_dir_all(scratch.join("crates/pinq/src/kernel")).unwrap();
    // The forbidden token is assembled at runtime so this very test file
    // does not trip the gate it is testing.
    let forbidden = format!(".{}{}", "charge_with", "(1.0, meta)");
    std::fs::write(
        scratch.join("crates/pinq/src/kernel/budget.rs"),
        format!("// kernel-internal use is allowed: acct{forbidden};\n"),
    )
    .unwrap();
    std::fs::write(
        scratch.join("crates/dpnet-toolkit/src/lib.rs"),
        "pub fn fine() {}\n",
    )
    .unwrap();
    std::fs::write(
        &offender,
        format!("pub fn sneak(acct: &pinq::Accountant) {{\n    acct{forbidden};\n}}\n"),
    )
    .unwrap();

    let (ok, text) = run_seal(&scratch);
    std::fs::remove_dir_all(&scratch).ok();
    assert!(!ok, "gate passed despite an injected mutation:\n{text}");
    assert!(
        text.contains("kernel-seal VIOLATION"),
        "missing violation banner:\n{text}"
    );
    assert!(
        text.contains(offender_rel),
        "violation does not name the offending path {offender_rel}:\n{text}"
    );
    assert!(
        !text.contains("lib.rs"),
        "clean file falsely flagged:\n{text}"
    );
}
