//! Empirical verification of the differential-privacy guarantee itself.
//!
//! The definition (paper §2.1): for neighboring datasets `A`, `B` differing
//! in one record and any outcome set `S`,
//! `Pr[M(A) ∈ S] ≤ Pr[M(B) ∈ S] · e^ε`.
//!
//! These tests estimate the outcome distributions of the engine's
//! mechanisms on neighboring inputs by brute-force sampling and check the
//! ratio bound on every outcome bin with appreciable mass. Sampling error
//! is handled with a tolerance factor; a *violated* bound beyond tolerance
//! would indicate a real calibration bug (e.g. noise scaled to the wrong
//! sensitivity).

use dpnet::pinq::{Accountant, NoiseSource, Queryable};
use std::collections::HashMap;

const TRIALS: usize = 200_000;

/// Estimate Pr[outcome = k] of the integral geometric-mechanism count.
fn count_distribution(records: usize, eps: f64, seed: u64) -> HashMap<i64, f64> {
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(seed);
    let q = Queryable::new(vec![0u8; records], &acct, &noise);
    let mut hist: HashMap<i64, usize> = HashMap::new();
    for _ in 0..TRIALS {
        let c = q.noisy_count_int(eps).expect("budget");
        *hist.entry(c).or_default() += 1;
    }
    hist.into_iter()
        .map(|(k, n)| (k, n as f64 / TRIALS as f64))
        .collect()
}

fn assert_dp_bound(a: &HashMap<i64, f64>, b: &HashMap<i64, f64>, eps: f64) {
    let bound = eps.exp();
    // Sampling tolerance: only check bins with enough mass for a stable
    // estimate, and allow a multiplicative slack for sampling noise.
    let min_mass = 50.0 / TRIALS as f64;
    let slack = 1.25;
    for (k, &pa) in a {
        if pa < min_mass {
            continue;
        }
        let pb = b.get(k).copied().unwrap_or(min_mass / 10.0);
        assert!(
            pa <= pb * bound * slack,
            "DP bound violated at outcome {k}: {pa} > {pb} · e^{eps}"
        );
    }
}

#[test]
fn geometric_count_satisfies_dp_on_neighbors() {
    for &eps in &[0.5f64, 1.0] {
        // Neighboring datasets: n and n+1 records.
        let a = count_distribution(100, eps, 1000);
        let b = count_distribution(101, eps, 2000);
        assert_dp_bound(&a, &b, eps);
        assert_dp_bound(&b, &a, eps);
    }
}

#[test]
fn distant_datasets_are_distinguishable() {
    // Sanity check on the test's power: datasets differing in MANY records
    // must violate the single-record bound — otherwise the assertions above
    // would be vacuous.
    let eps = 1.0;
    let a = count_distribution(100, eps, 3000);
    let b = count_distribution(140, eps, 4000);
    let bound = eps.exp();
    let violated = a.iter().any(|(k, &pa)| {
        pa > 50.0 / TRIALS as f64 && pa > b.get(k).copied().unwrap_or(1e-9) * bound * 1.25
    });
    assert!(
        violated,
        "test has no power to detect non-private behaviour"
    );
}

#[test]
fn filter_then_count_is_still_private() {
    // The guarantee must survive transformations: neighboring datasets
    // where the extra record passes the filter.
    let eps = 1.0;
    let make = |extra: bool, seed: u64| {
        let mut records: Vec<u32> = (0..200).collect();
        if extra {
            records.push(7); // odd? no: 7 % 2 == 1 → passes the filter below
        }
        let acct = Accountant::new(f64::MAX / 2.0);
        let noise = NoiseSource::seeded(seed);
        let q = Queryable::new(records, &acct, &noise);
        let mut hist: HashMap<i64, usize> = HashMap::new();
        for _ in 0..TRIALS {
            let c = q
                .filter(|&x| x % 2 == 1)
                .noisy_count_int(eps)
                .expect("budget");
            *hist.entry(c).or_default() += 1;
        }
        hist.into_iter()
            .map(|(k, n)| (k, n as f64 / TRIALS as f64))
            .collect::<HashMap<i64, f64>>()
    };
    let a = make(false, 5000);
    let b = make(true, 6000);
    assert_dp_bound(&a, &b, eps);
    assert_dp_bound(&b, &a, eps);
}

#[test]
fn group_by_count_uses_its_doubled_budget_correctly() {
    // GroupBy charges 2ε for an ε-accurate count: the *noise* must still be
    // calibrated to ε (scale 1/ε), which at the doubled charge satisfies
    // DP for group-level changes. Verify the noise scale empirically.
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(7000);
    let q = Queryable::new((0..1000u32).collect::<Vec<_>>(), &acct, &noise);
    let eps = 1.0;
    let grouped = q.group_by(|&x| x % 50);
    let mut errs = Vec::new();
    for _ in 0..20_000 {
        errs.push(grouped.noisy_count(eps).expect("budget") - 50.0);
    }
    let std = dpnet::toolkit::std_dev(&errs);
    let expected = std::f64::consts::SQRT_2 / eps;
    assert!(
        (std - expected).abs() / expected < 0.05,
        "noise std {std} vs expected {expected}"
    );
}
