//! Property-based tests of the privacy accounting invariants, driven
//! through the public API only.
//!
//! The central claims under test:
//!
//! 1. **No overspend, ever** — whatever sequence of transformations and
//!    aggregations runs, the accountant never reports more spent than the
//!    configured budget.
//! 2. **Failed operations are free** — a refused aggregation leaves the
//!    ledger exactly where it was.
//! 3. **Parallel composition** — spends on disjoint partition parts cost
//!    the maximum, not the sum.
//! 4. **Stability arithmetic** — chains of GroupBy/SelectMany multiply
//!    costs exactly as documented.

use dpnet::pinq::{Accountant, NoiseSource, Queryable};
use proptest::prelude::*;

/// One step of an analyst session, generated randomly.
#[derive(Debug, Clone)]
enum Op {
    Count(f64),
    Sum(f64),
    GroupThenCount(f64),
    PartitionCounts { eps: f64, parts: u8 },
    Median(f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let eps = 0.01f64..2.0;
    prop_oneof![
        eps.clone().prop_map(Op::Count),
        eps.clone().prop_map(Op::Sum),
        eps.clone().prop_map(Op::GroupThenCount),
        (eps.clone(), 1u8..6).prop_map(|(eps, parts)| Op::PartitionCounts { eps, parts }),
        eps.prop_map(Op::Median),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_sessions_never_oversubscribe(
        ops in prop::collection::vec(op_strategy(), 1..25),
        budget in 0.1f64..5.0,
        seed in 0u64..1000,
    ) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(seed);
        let data: Vec<u32> = (0..500).collect();
        let q = Queryable::new(data, &acct, &noise);

        for op in ops {
            let before = acct.spent();
            let outcome = match op {
                Op::Count(eps) => q.noisy_count(eps).map(|_| ()),
                Op::Sum(eps) => q.noisy_sum(eps, |&x| x as f64 / 500.0).map(|_| ()),
                Op::GroupThenCount(eps) => {
                    q.group_by(|&x| x % 7).noisy_count(eps).map(|_| ())
                }
                Op::PartitionCounts { eps, parts } => {
                    let keys: Vec<u32> = (0..parts as u32).collect();
                    let pieces = q.partition(&keys, move |&x| x % parts as u32).unwrap();
                    let mut res = Ok(());
                    for p in &pieces {
                        if let Err(e) = p.noisy_count(eps) {
                            res = Err(e);
                            break;
                        }
                    }
                    res
                }
                Op::Median(eps) => {
                    q.noisy_median(eps, 0.0, 500.0, 50, |&x| x as f64).map(|_| ())
                }
            };
            let after = acct.spent();
            // Invariant 1: never beyond the budget.
            prop_assert!(after <= budget + 1e-9, "spent {after} > budget {budget}");
            // Invariant: spending is monotone within a session.
            prop_assert!(after + 1e-12 >= before);
            // Invariant 2 (approximate form): a failed op charges nothing
            // for single-shot aggregations. (Partition sequences may keep
            // earlier successful parts, which is correct behaviour.)
            if outcome.is_err()
                && !matches!(op, Op::PartitionCounts { .. }) {
                    prop_assert!((after - before).abs() < 1e-9,
                        "failed op changed the ledger: {before} → {after}");
                }
        }
    }

    #[test]
    fn partition_costs_the_maximum(
        eps_per_part in prop::collection::vec(0.01f64..0.5, 2..6),
        seed in 0u64..1000,
    ) {
        let acct = Accountant::new(100.0);
        let noise = NoiseSource::seeded(seed);
        let data: Vec<u32> = (0..100).collect();
        let q = Queryable::new(data, &acct, &noise);
        let keys: Vec<u32> = (0..eps_per_part.len() as u32).collect();
        let n = eps_per_part.len() as u32;
        let parts = q.partition(&keys, move |&x| x % n).unwrap();
        for (part, &eps) in parts.iter().zip(&eps_per_part) {
            part.noisy_count(eps).unwrap();
        }
        let expected: f64 = eps_per_part.iter().cloned().fold(0.0, f64::max);
        prop_assert!((acct.spent() - expected).abs() < 1e-9,
            "spent {} expected max {}", acct.spent(), expected);
    }

    #[test]
    fn stability_chains_multiply(
        eps in 0.01f64..0.5,
        groups in 1u8..4,
        seed in 0u64..1000,
    ) {
        let acct = Accountant::new(1e6);
        let noise = NoiseSource::seeded(seed);
        let data: Vec<u32> = (0..64).collect();
        let mut q = Queryable::new(data, &acct, &noise)
            .map(|&x| x); // identity keeps the type simple
        for level in 0..groups {
            q = q
                .group_by(move |&x| x.wrapping_shr(level as u32) & 1)
                .map(|g| g.items.len() as u32);
        }
        q.noisy_count(eps).unwrap();
        let expected = eps * 2f64.powi(groups as i32);
        prop_assert!((acct.spent() - expected).abs() < 1e-9,
            "spent {} expected {}", acct.spent(), expected);
    }

    #[test]
    fn noisy_counts_are_centered_on_truth(
        n in 1usize..2000,
        eps in 0.5f64..5.0,
        seed in 0u64..100,
    ) {
        // A single draw lies within 20/eps of the truth with overwhelming
        // probability (Laplace tail: P(|X| > 20/ε · ε) = e⁻²⁰/2).
        let acct = Accountant::new(1e9);
        let noise = NoiseSource::seeded(seed);
        let q = Queryable::new(vec![0u8; n], &acct, &noise);
        let c = q.noisy_count(eps).unwrap();
        prop_assert!((c - n as f64).abs() < 20.0 / eps,
            "count {c} too far from {n} at eps {eps}");
    }

    #[test]
    fn select_many_truncation_bounds_influence(
        fanout in 1usize..6,
        produced in 0usize..12,
        seed in 0u64..100,
    ) {
        // However many items the closure produces, the output count is at
        // most fanout × n and cost scales with the declared fanout.
        let acct = Accountant::new(1e6);
        let noise = NoiseSource::seeded(seed);
        let n = 50usize;
        let q = Queryable::new(vec![7u8; n], &acct, &noise);
        let expanded = q.select_many(fanout, move |_| vec![1u8; produced]).unwrap();
        let eps = 0.3;
        let c = expanded.noisy_count(eps).unwrap();
        let true_out = n * produced.min(fanout);
        prop_assert!((c - true_out as f64).abs() < 60.0,
            "count {c} vs truncated truth {true_out}");
        prop_assert!((acct.spent() - eps * fanout as f64).abs() < 1e-9);
    }
}
