//! Cross-crate integration tests: the full owner → format → engine →
//! analysis pipeline.

use dpnet::analyses::example_s23::{heavy_hosts_to_port, heavy_hosts_to_port_exact};
use dpnet::analyses::flow_stats::{rtt_cdf, rtt_cdf_exact};
use dpnet::analyses::packet_dist::{packet_length_cdf, packet_length_cdf_exact};
use dpnet::pinq::{Accountant, NoiseSource, Queryable};
use dpnet::toolkit::stats::relative_rmse;
use dpnet::trace::format::{read_trace, write_trace};
use dpnet::trace::gen::hotspot::{generate, HotspotConfig};

fn small_trace() -> dpnet::trace::gen::hotspot::HotspotTrace {
    generate(HotspotConfig {
        web_flows: 300,
        worms_above_threshold: 2,
        worms_below_threshold: 1,
        stepping_stone_pairs: 2,
        interactive_decoys: 2,
        itemset_hosts: 20,
        ..HotspotConfig::default()
    })
}

#[test]
fn persisted_trace_analyzes_identically() {
    // Serialize, reload, and verify a seeded analysis gives identical
    // results on both copies.
    let trace = small_trace();
    let mut file = Vec::new();
    write_trace(&mut file, &trace.packets).unwrap();
    let reloaded = read_trace(&file[..]).unwrap();
    assert_eq!(reloaded, trace.packets);

    let run = |packets: Vec<dpnet::trace::Packet>| -> f64 {
        let budget = Accountant::new(10.0);
        let noise = NoiseSource::seeded(77);
        let q = Queryable::new(packets, &budget, &noise);
        heavy_hosts_to_port(&q, 80, 1024, 0.5).unwrap()
    };
    assert_eq!(run(trace.packets), run(reloaded));
}

#[test]
fn analysis_results_track_exact_baselines() {
    let trace = small_trace();
    let exact_hosts = heavy_hosts_to_port_exact(&trace.packets, 80, 1024);
    let exact_len = packet_length_cdf_exact(&trace.packets, 1500, 20);
    let exact_rtt = rtt_cdf_exact(&trace.packets, 600, 20);

    let budget = Accountant::new(100.0);
    let noise = NoiseSource::seeded(88);
    let q = Queryable::new(trace.packets, &budget, &noise);

    let hosts = heavy_hosts_to_port(&q, 80, 1024, 1.0).unwrap();
    assert!((hosts - exact_hosts as f64).abs() < 10.0);

    let len = packet_length_cdf(&q, 1500, 20, 1.0).unwrap();
    assert!(relative_rmse(&len.cdf, &exact_len) < 0.05);

    let rtt = rtt_cdf(&q, 600, 20, 1.0).unwrap();
    assert!(relative_rmse(&rtt.cdf, &exact_rtt) < 0.15);
}

#[test]
fn budget_is_shared_across_different_analyses() {
    // Several analyses draw from one dataset budget; the accountant's
    // ledger must add up exactly and then stop everything.
    let trace = small_trace();
    let budget = Accountant::new(3.5);
    let noise = NoiseSource::seeded(99);
    let q = Queryable::new(trace.packets, &budget, &noise);

    packet_length_cdf(&q, 1500, 20, 1.0).unwrap(); // 1.0
    rtt_cdf(&q, 600, 20, 0.5).unwrap(); // 2 × 0.5 (join touches data twice)
    heavy_hosts_to_port(&q, 80, 1024, 0.5).unwrap(); // 2 × 0.5 (GroupBy)
    assert!((budget.spent() - 3.0).abs() < 1e-9);

    // The next analysis does not fit; afterwards the remaining 0.5 is
    // still intact and usable.
    assert!(rtt_cdf(&q, 600, 20, 0.5).is_err());
    assert!(
        (budget.spent() - 3.0).abs() < 1e-9,
        "failed query must refund"
    );
    q.noisy_count(0.5).unwrap();
    assert!(q.noisy_count(0.01).is_err());
}

#[test]
fn tenth_scale_trace_still_supports_the_pipeline() {
    let trace = generate(HotspotConfig {
        web_flows: 30,
        worms_above_threshold: 1,
        worms_below_threshold: 0,
        stepping_stone_pairs: 1,
        interactive_decoys: 1,
        itemset_hosts: 5,
        ..HotspotConfig::default()
    });
    let budget = Accountant::new(10.0);
    let noise = NoiseSource::seeded(111);
    let q = Queryable::new(trace.packets.clone(), &budget, &noise);
    let exact = packet_length_cdf_exact(&trace.packets, 1500, 50);
    let cdf = packet_length_cdf(&q, 1500, 50, 1.0).unwrap();
    // Noisier than the full trace, but still tracks the truth.
    assert!(relative_rmse(&cdf.cdf, &exact) < 0.25);
}
