//! # dpnet — differentially-private network trace analysis
//!
//! A from-scratch Rust reproduction of *McSherry & Mahajan,
//! "Differentially-Private Network Trace Analysis" (SIGCOMM 2010)*: a
//! PINQ-style ε-differentially-private query engine, a network-trace
//! substrate with synthetic stand-ins for the paper's proprietary datasets,
//! the paper's privacy-efficient analysis toolkit, and its six network
//! analyses — each with a noise-free baseline and an experiment harness
//! regenerating every table and figure.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`pinq`] — the query engine: [`pinq::Queryable`],
//!   [`pinq::Accountant`], noise mechanisms, budget composition.
//! * [`trace`] (`dpnet-trace`) — packet/flow model, binary trace format,
//!   dataset generators.
//! * [`toolkit`] (`dpnet-toolkit`) — CDF estimators, frequent strings,
//!   itemset mining, DP k-means, PCA.
//! * [`analyses`] (`dpnet-analyses`) — the §5 analyses.
//!
//! ## Quickstart
//!
//! ```
//! use dpnet::pinq::{Accountant, NoiseSource, Queryable};
//! use dpnet::trace::gen::hotspot::{generate, HotspotConfig};
//!
//! // Data owner: generate (or load) a trace and set a privacy budget.
//! let trace = generate(HotspotConfig { web_flows: 50, ..Default::default() });
//! let budget = Accountant::new(1.0);
//! let noise = NoiseSource::seeded(42);
//! let packets = Queryable::new(trace.packets, &budget, &noise);
//!
//! // Analyst: the paper's §2.3 query — distinct hosts sending >1 KB to
//! // port 80 — at accuracy ε = 0.1.
//! let heavy = packets
//!     .filter(|p| p.dst_port == 80)
//!     .group_by(|p| p.src_ip)
//!     .filter(|g| g.items.iter().map(|p| p.len as u64).sum::<u64>() > 1024)
//!     .noisy_count(0.1)
//!     .unwrap();
//! assert!(heavy.is_finite());
//! assert!(budget.spent() > 0.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/dpnet-bench` for the per-table/figure experiment harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dpnet_analyses as analyses;
pub use dpnet_toolkit as toolkit;
pub use dpnet_trace as trace;
pub use pinq;
