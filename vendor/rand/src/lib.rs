//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the narrow slice of `rand` it actually uses:
//! [`Rng`], [`RngCore`], [`SeedableRng`] and [`rngs::StdRng`].
//!
//! `StdRng` here is **xoshiro256++** seeded via SplitMix64 — an
//! excellent-quality, very fast non-cryptographic generator. It is *not*
//! a CSPRNG; for the synthetic-trace generators and seeded experiment
//! noise in this repository that trade-off is fine, but a deployed
//! mediated-analysis service must swap in a cryptographically secure
//! generator (see `pinq::rng` for the threat-model discussion).
//!
//! Streams are deterministic per seed but deliberately *not* guaranteed
//! to match upstream `rand`'s ChaCha streams.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniformly random words.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly "at random" by [`Rng::gen`] (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Types with a uniform sampler over an interval. The blanket
/// [`SampleRange`] impls below are generic over this trait — that single
/// blanket impl (rather than one impl per concrete type) is what lets the
/// compiler unify `gen_range`'s return type with an integer literal's type
/// during inference, exactly as the real `rand` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Unbiased via rejection of the overhang.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let v = rng.next_u64();
                    if v < zone || zone == 0 {
                        return lo.wrapping_add((v % span) as $t);
                    }
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                <$t>::sample_half_open(rng, lo, hi.wrapping_add(1))
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                let v = lo + u * (hi - lo);
                // Floating rounding can land exactly on `hi`; nudge back in.
                if v >= hi { <$t>::from_bits(hi.to_bits() - 1) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == hi {
                    return lo;
                }
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        <f64 as StandardSample>::sample(self) < p
    }

    /// Fill a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Construct from best-effort OS/process entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn entropy_u64() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    // RandomState folds in per-process randomized keys.
    let h = std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish();
    t ^ h.rotate_left(32) ^ (std::process::id() as u64).wrapping_mul(0x9E37_79B9)
}

/// The provided generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; remix via
            // SplitMix64 in that (astronomically unlikely) case.
            if s == [0; 4] {
                let mut st = 0x9E37_79B9_7F4A_7C15u64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

/// A convenience thread-local-style generator (fresh entropy per call).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5..15u32);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1000 {
            let v = r.gen_range(-3..3i64);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
            let w = r.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&w));
        }
    }

    #[test]
    fn fill_randomizes_bytes() {
        let mut r = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 37];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn entropy_seeds_vary() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        // Not a strict guarantee, but 2⁻⁶⁴ failure odds.
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
