//! Vendored, dependency-free subset of the `bytes` crate API.
//!
//! The build environment has no crate registry access; the trace codecs
//! only need a read cursor ([`Bytes`] + [`Buf`]) and an append-only write
//! buffer ([`BytesMut`] + [`BufMut`]), so those are implemented here over
//! plain `Vec<u8>` with no sharing tricks.

#![forbid(unsafe_code)]

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Consume a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An owned, consumable byte cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Remaining bytes copied into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Consume `n` bytes into a new `Bytes`.
    pub fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        out
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.pos += n;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "read past end of buffer");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// An append-only growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i32_le(-7);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_slice(b"xyz");
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -7);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_and_copy_to_bytes() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(2);
        let mid = b.copy_to_bytes(2);
        assert_eq!(mid.to_vec(), vec![3, 4]);
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32_le();
    }

    #[test]
    fn deref_exposes_written_bytes() {
        let mut w = BytesMut::new();
        w.put_slice(b"hi");
        let s: &[u8] = &w;
        assert_eq!(s, b"hi");
        w.clear();
        assert!(w.is_empty());
    }
}
