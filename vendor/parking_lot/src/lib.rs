//! Vendored, dependency-free subset of the `parking_lot` API, backed by
//! `std::sync`. The build environment has no crate registry access, so the
//! workspace keeps `parking_lot`'s ergonomic non-poisoning interface
//! (`lock()` returning a guard directly) while delegating to the standard
//! library's primitives.
//!
//! Poisoning is deliberately swallowed: like real `parking_lot`, a panic
//! while holding the lock does not make later `lock()` calls fail.

#![forbid(unsafe_code)]

use std::fmt;

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never fails: a poisoned
    /// lock (panic in another holder) is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// The read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// The write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn debug_does_not_deadlock() {
        let m = Mutex::new(3);
        let _g = m.lock();
        let s = format!("{m:?}");
        assert!(s.contains("locked"));
    }
}
