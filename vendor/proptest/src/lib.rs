//! Vendored, dependency-free subset of the `proptest` crate API.
//!
//! The build environment has no crate registry access, so the workspace
//! vendors the slice of proptest its property tests use: the [`Strategy`]
//! trait (ranges, tuples, `prop::collection::vec`, [`any`], `prop_map`,
//! `prop_oneof!`), the `proptest!` test macro, and the assertion macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the seed that produced it;
//!   re-running is deterministic (seeds derive from the test name), so the
//!   failure reproduces exactly but is not minimized.
//! * `prop_assume!` rejects the case and draws a fresh one, with a cap on
//!   total rejections.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};

/// The generator driving test-case production.
pub type TestRng = rand::rngs::StdRng;

/// Marker for a rejected case (`prop_assume!` failure). Internal.
#[doc(hidden)]
pub const REJECT_MARKER: &str = "__proptest_shim_reject__";

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among several strategies (behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from boxed alternatives.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[doc(hidden)]
pub fn __run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    // Deterministic per-test seeds: reruns reproduce failures exactly.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut executed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = cfg.cases as u64 * 64;
    let mut attempt = 0u64;
    while executed < cfg.cases {
        let seed = h.wrapping_add(attempt);
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(e) if e == REJECT_MARKER => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected} rejected, {executed}/{} passed)",
                        cfg.cases
                    );
                }
            }
            Err(msg) => {
                panic!("proptest '{name}' failed at case {executed} (seed {seed:#x}):\n{msg}")
            }
        }
    }
}

/// Define property tests: a block of `#[test] fn name(args in strategies)`
/// items, optionally preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code, unused_mut)]
        fn $name() {
            let __cfg = $cfg;
            $crate::__run_proptest(&__cfg, stringify!($name), |__rng| {
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr) => {
        let mut $name = $crate::Strategy::generate(&($strat), &mut *$rng);
    };
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::Strategy::generate(&($strat), &mut *$rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut *$rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut *$rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), ::std::format!($($fmt)*)
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(),
                ::std::format!($($fmt)*), __a, __b
            ));
        }
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::REJECT_MARKER.to_string());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };

    /// Mirror of the upstream `prop` path alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn test_rng(s: u64) -> crate::TestRng {
        <crate::TestRng as rand::SeedableRng>::seed_from_u64(s)
    }

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = test_rng(1);
        let strat = (
            0u8..4,
            1.0f64..2.0,
            crate::collection::vec(any::<u16>(), 3..5),
        );
        for _ in 0..200 {
            let (a, b, v) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!((1.0..2.0).contains(&b));
            assert!(v.len() >= 3 && v.len() < 5);
        }
    }

    #[test]
    fn exact_vec_size_is_honored() {
        let mut rng = test_rng(2);
        let strat = crate::collection::vec(0i64..10, 6);
        assert_eq!(strat.generate(&mut rng).len(), 6);
    }

    #[test]
    fn union_samples_every_branch() {
        let mut rng = test_rng(3);
        let strat = prop_oneof![(0u32..1).prop_map(|_| 'a'), (0u32..1).prop_map(|_| 'b')];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(
            x in 0u64..100,
            mut v in prop::collection::vec(0u8..10, 0..8),
        ) {
            prop_assume!(x != 13);
            v.sort_unstable();
            prop_assert!(x < 100, "x was {x}");
            prop_assert_eq!(v.len(), v.len());
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v[0] <= v[v.len() - 1]);
        }
    }
}
