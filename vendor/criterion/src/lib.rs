//! Vendored, dependency-free subset of the `criterion` crate API.
//!
//! The build environment has no crate registry access, so the workspace's
//! benches run against this small harness: same `criterion_group!` /
//! `criterion_main!` / `bench_function` surface, a simple
//! warmup-then-sample timing loop, and plain-text reporting of
//! min/median/mean per iteration (plus throughput when configured).
//! No statistical regression machinery — this is for relative, same-machine
//! comparisons.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh batch every iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warmup pass, then `sample_size` timed passes.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  {per_sec:>14.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {per_sec:>12.1} MiB/s")
        }
        None => String::new(),
    };
    println!("{id:<40} min {min:>12?}  median {median:>12?}  mean {mean:>12?}{rate}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n[{name}]");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            prefix: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    report(id, &mut b.samples, throughput);
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.prefix, name);
        run_one(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.prefix, id.id);
        run_one(&id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group: plain form or `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_inputs_work() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter(|| black_box(42)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
