#!/usr/bin/env bash
# kernel-seal: prove no module outside `pinq::kernel` constructs or mutates
# privacy-budget / partition-ledger state directly.
#
# Every ε-mutating operation lives behind `crates/pinq/src/kernel/` —
# `Accountant::charge_with`, `ChargeNode` construction, `PartitionLedger`
# internals, `ChargeMeta`, … are `pub(in crate::kernel)`. The compiler
# enforces that for the `pinq` crate itself; this gate also catches
#   * code in *other* crates reaching mutation through a future
#     accidentally-public re-export, and
#   * new privacy-critical surface added outside the kernel module.
#
# Usage: scripts/kernel_seal.sh [REPO_ROOT]
# Exit 0 when sealed; exit 1 naming every offending path otherwise.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

# The privacy-mutating surface. Anything matching these outside the kernel
# directory is a seal violation: either a direct state mutation or a
# construction of budget/ledger plumbing that belongs inside the kernel.
patterns=(
    'ChargeNode::Root('
    'ChargeNode::Scaled'
    'ChargeNode::Combined('
    'ChargeNode::PartitionPart'
    'PartitionLedger::new('
    '.charge_with('
    '.charge_traced('
    '.refund_with('
    '.charge_child_traced('
    '.refund_child_with('
    '.predict_into('
    'ChargeMeta'
)

# Scan all Rust sources in the workspace except the kernel itself (and
# build output / vendored deps, which are not our code).
files=$(find src crates tests examples -name '*.rs' -type f 2>/dev/null \
    | grep -v '^crates/pinq/src/kernel/')

violations=0
for pat in "${patterns[@]}"; do
    # Fixed-string grep: the patterns contain regex metacharacters.
    hits=$(grep -nF -- "$pat" $files 2>/dev/null)
    if [ -n "$hits" ]; then
        echo "kernel-seal VIOLATION: '$pat' used outside crates/pinq/src/kernel/:" >&2
        echo "$hits" | sed 's/^/  /' >&2
        violations=1
    fi
done

if [ "$violations" -ne 0 ]; then
    echo >&2
    echo "kernel-seal: privacy-budget state must only be constructed or" >&2
    echo "mutated inside crates/pinq/src/kernel/ (see DESIGN.md, 'Privacy" >&2
    echo "kernel'). Route new charges through the pinq::kernel API." >&2
    exit 1
fi

echo "kernel-seal: OK — no budget/ledger mutation outside crates/pinq/src/kernel/"
exit 0
